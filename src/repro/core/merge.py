"""The merge engine shared by Bottom-Up, Hybrid, and the precomputation.

The only mutation the greedy algorithms of Section 5 perform is the
``Merge(O, C1, C2)`` operation: replace C1 and C2 (and any other cluster
now covered) by their least common ancestor.  This module centralizes that
operation together with the machinery to *evaluate* candidate merges — i.e.
compute ``avg(O union LCA(C1, C2))`` — efficiently.

Evaluation is the hot path, and two layers of optimization live here:

* **Delta judgment** (Section 6.3, Algorithm 2): per candidate cluster
  ``c``, cache the marginal benefit ``(delta_sum, delta_cnt)`` of the
  elements in ``cov(c) \\ T_i`` (where ``T_i`` is the currently covered
  set) and refresh it from the per-round difference ``T_i \\ T_{i-1}``
  instead of recomputing from scratch.  Controlled by ``use_delta``; the
  naive recompute path is kept for the Figure 8b ablation.

* **The mask kernels + incremental pair cache** (``kernel="bitset"``, the
  default, or ``kernel="dense"``): covered sets are bitmasks — arbitrary-
  precision ints (:mod:`repro.core.bitset`) or packed uint64 blocks with
  numpy-vectorized primitives (:mod:`repro.core.dense`, built for
  n >= 10^5) — so marginal counts are one ``bit_count()`` and marginal
  sums run over set bits only; and the engine maintains a persistent
  *pair table* — for every unordered pair of solution clusters, its
  distance and its LCA cluster — updated in O(|O|) per merge instead of
  being re-derived for all O(|O|^2) pairs in every greedy round.  Both
  mask kernels share this entire code path (the mask objects expose the
  same operators); a dense engine requires a pool built with
  ``kernel="dense"`` so the cluster masks match its representation.
  ``kernel="python"`` preserves the original pure-Python set
  implementation as the ablation baseline.  All kernels run the same
  greedy logic with the same tie-break keys and produce identical
  solutions whenever value sums are exact (integer or dyadic-rational
  values — property-tested); ``bitset`` and ``dense`` sum in the same
  ascending index order and are float-identical to each other always,
  while on arbitrary floats the ``python`` kernel accumulates in a
  different order, so a mathematically exact tie can, in principle,
  break differently at the last ulp.

* **The lazy upper-bound heap argmax** (``argmax="heap"``, the default on
  the bitset kernel whenever no element value is negative): instead of
  scanning every LCA group per round, the engine keeps one max-heap of
  groups per distance filter, keyed by a *stale* upper bound on each
  group's post-merge objective.  The **LCA-group invariant** makes groups
  the right argmax unit: all pairs whose LCA is the same pattern share
  one distance (``distance(p1, p2) == level(lca(p1, p2))`` — the LCA
  stars exactly the disagreeing positions) and one post-merge objective,
  so one marginal evaluation prices every pair in the group.  The heap
  adds laziness on top.  Because the covered union T only grows, two
  stale per-group quantities stay valid bounds across rounds *when all
  values are non-negative*: the marginal value sum only shrinks, and
  ``covered_count + marginal_count`` only grows — so ``(covered_sum +
  stale_sum) / max(covered_count, stale_mass)`` always dominates the
  group's current objective.  The argmax pops groups in bound order,
  re-evaluates exactly (stale-bound pop-and-refresh), and stops as soon
  as the best exact value seen beats the drift-corrected bound at the
  top of the heap; every group that could still win or tie has, at that
  point, been evaluated with the same floats and the same tie-break key
  as the full scan, which is why heap and scan are bit-identical
  (property-tested).  Steady-state rounds therefore evaluate only the
  near-optimal frontier plus newly created groups — sublinear in the
  number of LCA groups — instead of all of them.  ``argmax="scan"``
  keeps the exhaustive group scan as the ablation baseline, and remains
  the only mode of the python kernel (which has no pair table).  With
  negative values the monotonicity argument fails, so ``argmax="auto"``
  silently falls back to the scan and an explicit ``argmax="heap"`` is
  rejected.

Note: Algorithm 2 in the paper transposes the assignments of ``delta_sum``
and ``delta_cnt`` (lines 6-7 and 10-11); we implement the evidently
intended semantics (sum of values vs. element count).

Usage::

    >>> from repro.core.answers import AnswerSet
    >>> from repro.core.semilattice import ClusterPool
    >>> from repro.core.merge import MergeEngine
    >>> answers = AnswerSet.from_rows(
    ...     [("a", "x"), ("a", "y"), ("b", "x")], [4.0, 3.0, 1.0])
    >>> pool = ClusterPool(answers, L=2)
    >>> engine = MergeEngine(pool, (pool.singleton(i) for i in range(2)))
    >>> engine.argmax                  # non-negative values -> lazy heap
    'heap'
    >>> pair = engine.best_any_pair()  # the greedy argmax over LCA groups
    >>> merged = engine.merge(*pair)
    >>> engine.snapshot().avg          # (4 + 3) / 2 after merging to (a, *)
    3.5
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Iterable, Iterator, Sequence

from repro.common.budget import checkpoint as _budget_checkpoint
from repro.common.errors import InvalidParameterError
from repro.core.answers import AnswerSet
from repro.core.bitset import (
    BITSET_KERNEL,
    DENSE_KERNEL,
    INT_MASK_OPS,
    PYTHON_KERNEL,
    resolve_kernel,
)
from repro.core.cluster import (
    Cluster,
    Pattern,
    distance,
    lca,
    lca_and_distance,
    strictly_covers,
)
from repro.core.semilattice import ClusterPool
from repro.core.solution import Solution

#: The lazy upper-bound heap argmax (bitset kernel, non-negative values).
HEAP_ARGMAX = "heap"
#: The exhaustive per-round LCA-group scan (ablation baseline).
SCAN_ARGMAX = "scan"
#: Pick per instance: heap when sound (bitset kernel, min value >= 0).
AUTO_ARGMAX = "auto"
#: Every argmax mode the engine accepts.
ARGMAX_MODES = (AUTO_ARGMAX, HEAP_ARGMAX, SCAN_ARGMAX)


def resolve_argmax(argmax: str | None, kernel: str, answers: AnswerSet) -> str:
    """Resolve an argmax request to the concrete mode an engine will run.

    ``None``/``"auto"`` chooses :data:`HEAP_ARGMAX` exactly when it is
    sound and implemented — a mask kernel (``bitset`` or ``dense``; the
    heap lives on the pair table) with no negative element value
    (marginal sums must be monotone non-increasing for stale bounds to
    stay upper bounds; both mask kernels sum in ascending index order,
    which preserves that monotonicity in floats) — and
    :data:`SCAN_ARGMAX` otherwise.  An explicit ``"heap"`` that cannot be
    honored is an :class:`~repro.common.errors.InvalidParameterError`
    rather than a silent fallback: the caller asked for a specific
    complexity class, and quietly scanning would invalidate benchmarks.
    """
    if argmax is None:
        argmax = AUTO_ARGMAX
    if argmax not in ARGMAX_MODES:
        raise InvalidParameterError(
            "unknown argmax %r; expected one of %r" % (argmax, ARGMAX_MODES)
        )
    heap_ok = kernel != PYTHON_KERNEL and answers.min_value >= 0.0
    if argmax == AUTO_ARGMAX:
        return HEAP_ARGMAX if heap_ok else SCAN_ARGMAX
    if argmax == HEAP_ARGMAX and not heap_ok:
        if kernel == PYTHON_KERNEL:
            raise InvalidParameterError(
                "argmax='heap' requires a mask kernel ('bitset' or "
                "'dense'; the heap indexes the pair table); got "
                "kernel=%r" % kernel
            )
        raise InvalidParameterError(
            "argmax='heap' requires non-negative element values (stale "
            "marginal sums are only upper bounds when marginals shrink "
            "monotonically); min value is %r" % answers.min_value
        )
    return argmax


#: Multiplicative slack applied to the heap's drift-corrected stop bound.
#: The bound chain (stale priority + drift) is a *real-arithmetic* upper
#: bound assembled from several independently rounded float operations, so
#: — unlike the per-group refined bound, whose operations are all monotone
#: — it could in principle round one ulp below a group's exactly-computed
#: objective.  Inflating it by ~1e-12 (four orders of magnitude above the
#: accumulated rounding error of the handful of ops involved) restores a
#: guaranteed-dominant stop bound at a negligible cost in pruning power.
_DRIFT_SLACK = 1.0 + 1e-12

#: Reprioritize a lazy heap when its covered-sum drift term exceeds this
#: fraction of the current solution average.  Drift only loosens the stop
#: bound (correctness is unaffected); reprioritizing costs three float ops
#: per group and resets drift to zero, so this trades amortized
#: reprioritization passes against extra frontier pops.  Tuned on the
#: rounds-vs-groups benchmark (``benchmarks/run_bench.py``).
_REBUILD_DRIFT_FRACTION = 0.005


class _ArgmaxHeap:
    """One lazy max-heap of LCA groups for one distance filter.

    ``entries`` is a heapified list of ``(-priority, lca_pattern)``;
    ``meta`` maps each live candidate pattern to ``(priority,
    stale_marginal_sum, stale_mass)``, where the newest heap entry for a
    pattern is the one whose priority matches ``meta`` (older duplicates
    are discarded lazily on pop).

    The three stale ingredients bound a group's current post-merge
    objective ``(S + delta_sum) / (C + delta_cnt)`` from above, given only
    the current covered sum S and count C:

    * ``stale_marginal_sum`` dominates the current ``delta_sum`` — with
      non-negative values, marginal sums only shrink as T grows;
    * ``stale_mass`` (= C + delta_cnt as of the same stamp) floors the
      current denominator: every element that leaves a group's marginal
      enters T, so ``C + delta_cnt`` never drops below
      ``max(C_now, stale_mass)``;
    * ``priority`` is the refined bound ``(S_push + stale_sum) /
      max(C_push, stale_mass)`` frozen at push time — the group's exact
      objective when freshly evaluated.  It stops dominating as S grows,
      which is exactly what the caller's drift term ``(S_now - s_floor) /
      C_now`` repairs: ``priority + drift`` dominates every live entry's
      current refined bound because ``s_floor`` never exceeds any entry's
      push-time S.

    ``s_floor`` is reset by (re)builds; the engine rebuilds the heap when
    the drift term grows past a small fraction of the current average, so
    the stop bound stays within a hair of the true maximum.
    """

    __slots__ = ("entries", "meta", "s_floor")

    def __init__(self, s_floor: float) -> None:
        self.entries: list[tuple[float, Pattern]] = []
        self.meta: dict[Pattern, tuple[float, float, int]] = {}
        self.s_floor = s_floor


class _DeltaState:
    """Per-candidate cached marginal benefit, stamped with the merge round."""

    __slots__ = ("stamp", "delta_sum", "delta_cnt")

    def __init__(self, stamp: int, delta_sum: float, delta_cnt: int) -> None:
        self.stamp = stamp
        self.delta_sum = delta_sum
        self.delta_cnt = delta_cnt


#: One row of the persistent pair table: ``(first, second, distance,
#: lca_cluster)`` with ``first.pattern < second.pattern`` — mirroring the
#: order in which the naive path enumerates pairs, so tie-breaking keys are
#: identical across kernels.  Rows are plain tuples (cheapest to build and
#: index) and immutable once built: distance and LCA depend only on the two
#: patterns, never on the covered state, which is what makes the table safe
#: to keep across rounds and to share (shallow-copied) with clones.
_PairRow = tuple[Cluster, Cluster, int, Cluster]

#: Pairs grouped by their LCA pattern: ``(distance, lca_cluster, rows)``
#: where ``rows`` maps pair keys to their table rows.  Every pair in a
#: group shares one distance (``distance(p1, p2) == level(lca(p1, p2))``:
#: the LCA stars exactly the disagreeing positions) and one post-merge
#: objective, so the per-round argmax scans *groups*, evaluating each LCA
#: once, instead of scanning all O(|O|^2) pairs.
_LcaGroup = tuple[int, Cluster, dict[tuple[Pattern, Pattern], _PairRow]]


class MergeEngine:
    """Mutable greedy-merging state over a set of clusters.

    Maintains the current solution O, its covered-element union ``T`` with
    cached sum/count, the delta-judgment cache, and (bitset kernel) the
    incremental pair table.  All candidate-selection ties are broken
    lexicographically on cluster patterns so runs are deterministic.
    """

    def __init__(
        self,
        pool: ClusterPool,
        clusters: Iterable[Cluster],
        use_delta: bool = True,
        kernel: str | None = None,
        argmax: str | None = None,
    ) -> None:
        self.pool = pool
        self.answers: AnswerSet = pool.answers
        self.use_delta = use_delta
        self.kernel = resolve_kernel(kernel, n=pool.answers.n)
        self._masked = self.kernel != PYTHON_KERNEL
        if self._masked:
            pool_dense = (
                getattr(pool, "kernel", BITSET_KERNEL) == DENSE_KERNEL
            )
            if pool_dense != (self.kernel == DENSE_KERNEL):
                raise InvalidParameterError(
                    "kernel=%r needs cluster masks in its own "
                    "representation, but the pool was built with "
                    "kernel=%r; construct ClusterPool(..., kernel=%r) "
                    "(or go through ProblemInstance.pool_for)"
                    % (self.kernel, getattr(pool, "kernel", BITSET_KERNEL),
                       self.kernel)
                )
        if self.kernel == DENSE_KERNEL:
            from repro.core.dense import DENSE_MASK_OPS

            self._ops = DENSE_MASK_OPS
        else:
            self._ops = INT_MASK_OPS
        self.argmax = resolve_argmax(argmax, self.kernel, self.answers)
        self._heap_argmax = self.argmax == HEAP_ARGMAX
        #: One lazy heap per distance filter (None = unfiltered phase 2).
        self._heaps: dict[int | None, _ArgmaxHeap] = {}
        #: Greedy-argmax counters: rounds served, groups a scan would have
        #: evaluated, marginals actually evaluated, plus the lazy heap's
        #: frontier width (total and per-round max of heap entries popped
        #: per argmax round — the evidence behind the ROADMAP's "is the
        #: frontier wide enough for a convex-hull argmax" question).
        #: Snapshot() attaches a copy so services can surface the ratios.
        self.stats: dict[str, float] = {
            "argmax_rounds": 0.0,
            "argmax_groups": 0.0,
            "argmax_evals": 0.0,
            "argmax_skips": 0.0,
            "argmax_pops": 0.0,
            "argmax_pops_max": 0.0,
        }
        self._solution: dict[Pattern, Cluster] = {}
        self.rounds: int = 0
        self._delta_cache: dict[Pattern, _DeltaState] = {}
        self._covered_sum: float = 0.0
        if self._masked:
            self._pairs: dict[tuple[Pattern, Pattern], _PairRow] | None = {}
            self._by_lca: dict[Pattern, _LcaGroup] | None = {}
            self._covered: set[int] | None = None
            self._covered_mask = self._ops.empty(self.answers.n)
            self._last_diff: list[int] = []
            for cluster in clusters:
                if cluster.pattern in self._solution:
                    continue
                self._register_pairs(cluster)
                self._solution[cluster.pattern] = cluster
                fresh = cluster.mask & ~self._covered_mask
                if fresh:
                    self._covered_mask |= fresh
                    self._covered_sum += self.answers.mask_value_sum(fresh)
            # Covered-union history: _cover_log[r] is the covered mask
            # after round r.  Delta refreshes AND a candidate against the
            # coverage growth window since their stamp, so a state stale
            # by *any* number of rounds refreshes in one mask operation —
            # the property the lazy heap argmax depends on (its frontier
            # groups sleep for many rounds between evaluations).  Keyed by
            # round (not a list) so snapshots older than every live delta
            # state can be pruned; without pruning a long run would retain
            # O(rounds * n/8) bytes of history.
            self._cover_log: dict[int, int] = {0: self._covered_mask}
            self._diff_since_cache: dict[int, int] = {}
        else:
            self._pairs = None
            self._by_lca = None
            self._covered = set()
            self._covered_mask = 0
            self._last_diff = []
            self._cover_log = {}
            self._diff_since_cache = {}
            values = self.answers.values
            for cluster in clusters:
                if cluster.pattern in self._solution:
                    continue
                self._solution[cluster.pattern] = cluster
                for index in cluster.covered:
                    if index not in self._covered:
                        self._covered.add(index)
                        self._covered_sum += values[index]

    # -- read access ---------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._solution)

    @property
    def covered_count(self) -> int:
        if self._masked:
            return self._covered_mask.bit_count()
        return len(self._covered)

    def is_covered(self, index: int) -> bool:
        """True if element *index* is covered by the current solution."""
        if self._masked:
            return self._ops.test(self._covered_mask, index)
        return index in self._covered

    def is_fully_covered(self, cluster: Cluster) -> bool:
        """True if every element of cov(*cluster*) is already covered."""
        if self._masked:
            return not (cluster.mask & ~self._covered_mask)
        return all(index in self._covered for index in cluster.covered)

    def covered_indices(self) -> frozenset[int]:
        """The covered union T as a frozenset of element indices."""
        if self._masked:
            return frozenset(self._ops.indices(self._covered_mask))
        return frozenset(self._covered)

    def clone(self) -> "MergeEngine":
        """An independent copy of the current state.

        The incremental precomputation of Section 6.2 runs the shared
        Fixed-Order phase once and then forks one engine per D value; this
        is the fork.  The delta cache is not carried over (its states are
        mutated in place and must not be shared); it rebuilds lazily.  The
        pair table *is* carried over (rows are immutable), copied shallowly.
        The argmax heaps are likewise not shared (their bound dicts are
        mutated in place); each clone rebuilds them on first argmax.
        """
        twin = MergeEngine.__new__(MergeEngine)
        twin.pool = self.pool
        twin.answers = self.answers
        twin.use_delta = self.use_delta
        twin.kernel = self.kernel
        twin._masked = self._masked
        twin._ops = self._ops
        twin.argmax = self.argmax
        twin._heap_argmax = self._heap_argmax
        twin._heaps = {}
        twin.stats = dict(self.stats)
        twin._solution = dict(self._solution)
        twin._covered = set(self._covered) if self._covered is not None else None
        twin._covered_sum = self._covered_sum
        twin._covered_mask = self._covered_mask
        twin.rounds = self.rounds
        twin._last_diff = list(self._last_diff)
        twin._cover_log = dict(self._cover_log)
        twin._diff_since_cache = {}
        twin._delta_cache = {}
        twin._pairs = dict(self._pairs) if self._pairs is not None else None
        twin._by_lca = (
            {
                pattern: (group[0], group[1], dict(group[2]))
                for pattern, group in self._by_lca.items()
            }
            if self._by_lca is not None
            else None
        )
        return twin

    def clusters(self) -> list[Cluster]:
        """Current clusters in deterministic (pattern-sorted) order."""
        return [self._solution[p] for p in sorted(self._solution)]

    def avg(self) -> float:
        """Current objective avg(O)."""
        count = self.covered_count
        if not count:
            raise ValueError("engine holds no covered elements")
        return self._covered_sum / count

    def snapshot(self) -> Solution:
        """Freeze the current state into a :class:`Solution`.

        The solution carries a copy of the engine's argmax counters (plus
        an ``argmax_heap`` 0/1 flag) so callers up the stack — e.g.
        :class:`repro.service.Engine`, which folds them into
        ``SummaryResponse.phase_seconds`` — can report how much work the
        lazy heap saved without holding on to the engine.
        """
        ordered = sorted(
            self._solution.values(), key=lambda c: (-c.avg, c.pattern)
        )
        stats = dict(self.stats)
        stats["argmax_heap"] = 1.0 if self._heap_argmax else 0.0
        # Frontier width: mean heap entries popped per argmax round (the
        # max rides in argmax_pops_max); 0.0 under the scan argmax.
        stats["argmax_pops_mean"] = (
            stats["argmax_pops"] / stats["argmax_rounds"]
            if stats["argmax_rounds"]
            else 0.0
        )
        return Solution(
            tuple(ordered),
            self.covered_indices(),
            self._covered_sum,
            stats=stats,
        )

    # -- candidate evaluation --------------------------------------------------

    def _marginal(self, candidate: Cluster) -> tuple[float, int]:
        """(sum, count) of cov(candidate) \\ T, via delta judgment or naively."""
        if self._masked:
            return self._marginal_bitset(candidate)
        values = self.answers.values
        if not self.use_delta:
            delta_sum = 0.0
            delta_cnt = 0
            for index in candidate.covered:
                if index not in self._covered:
                    delta_sum += values[index]
                    delta_cnt += 1
            return delta_sum, delta_cnt
        state = self._delta_cache.get(candidate.pattern)
        if state is not None and state.stamp == self.rounds:
            return state.delta_sum, state.delta_cnt
        if state is not None and state.stamp == self.rounds - 1:
            # Refresh from the last difference list T_j \ T_{j-1}: any of
            # those newly covered elements that the candidate also covers no
            # longer counts as marginal.
            covered_by_candidate = candidate.covered
            for index in self._last_diff:
                if index in covered_by_candidate:
                    state.delta_sum -= values[index]
                    state.delta_cnt -= 1
            state.stamp = self.rounds
            return state.delta_sum, state.delta_cnt
        # Stale or unseen: full recomputation of cov(candidate) \ T.
        delta_sum = 0.0
        delta_cnt = 0
        for index in candidate.covered:
            if index not in self._covered:
                delta_sum += values[index]
                delta_cnt += 1
        self._delta_cache[candidate.pattern] = _DeltaState(
            self.rounds, delta_sum, delta_cnt
        )
        return delta_sum, delta_cnt

    def _diff_since(self, stamp: int) -> int:
        """Mask of elements covered after round *stamp* (cached per round)."""
        diff = self._diff_since_cache.get(stamp)
        if diff is None:
            diff = self._covered_mask & ~self._cover_log[stamp]
            self._diff_since_cache[stamp] = diff
        return diff

    def _marginal_bitset(self, candidate: Cluster) -> tuple[float, int]:
        """Bitset-kernel marginal: one AND-NOT plus popcount, value sums
        over set bits only; delta refreshes AND the candidate against the
        coverage growth window since the cached stamp, whatever its age."""
        answers = self.answers
        if not self.use_delta:
            diff = candidate.mask & ~self._covered_mask
            return answers.mask_value_sum(diff), diff.bit_count()
        rounds = self.rounds
        state = self._delta_cache.get(candidate.pattern)
        if state is not None:
            if state.stamp == rounds:
                return state.delta_sum, state.delta_cnt
            newly = self._diff_since(state.stamp) & candidate.mask
            if newly:
                state.delta_sum -= answers.mask_value_sum(newly)
                state.delta_cnt -= newly.bit_count()
            state.stamp = rounds
            return state.delta_sum, state.delta_cnt
        diff = candidate.mask & ~self._covered_mask
        delta_cnt = diff.bit_count()
        # Sum over whichever of cov(c) \ T and cov(c) & T has fewer bits;
        # the candidate's total value_sum makes the complement route O(1)
        # extra work.
        inter_cnt = candidate.mask.bit_count() - delta_cnt
        if inter_cnt < delta_cnt:
            delta_sum = candidate.value_sum - answers.mask_value_sum(
                candidate.mask & self._covered_mask
            )
        else:
            delta_sum = answers.mask_value_sum(diff)
        self._delta_cache[candidate.pattern] = _DeltaState(
            rounds, delta_sum, delta_cnt
        )
        return delta_sum, delta_cnt

    def evaluate_candidate(self, candidate: Cluster) -> float:
        """avg(O union candidate): the objective if *candidate* joined O."""
        delta_sum, delta_cnt = self._marginal(candidate)
        return (self._covered_sum + delta_sum) / (
            self.covered_count + delta_cnt
        )

    def evaluate_pair(self, c1: Cluster, c2: Cluster) -> tuple[float, Cluster]:
        """Objective after merging (c1, c2), and the LCA cluster itself."""
        merged = self._merged_cluster(c1, c2)
        return self.evaluate_candidate(merged), merged

    def _merged_cluster(self, c1: Cluster, c2: Cluster) -> Cluster:
        """The LCA cluster of a pair, via the pair table when possible."""
        if self._pairs is not None:
            key = (
                (c1.pattern, c2.pattern)
                if c1.pattern < c2.pattern
                else (c2.pattern, c1.pattern)
            )
            row = self._pairs.get(key)
            if row is not None:
                return row[3]
        return self.pool.cluster(lca(c1.pattern, c2.pattern))

    # -- pair enumeration ------------------------------------------------------

    def all_pairs(self) -> list[tuple[Cluster, Cluster]]:
        """All unordered cluster pairs, deterministically ordered."""
        ordered = self.clusters()
        return [
            (ordered[i], ordered[j])
            for i in range(len(ordered))
            for j in range(i + 1, len(ordered))
        ]

    def violating_pairs(self, D: int) -> list[tuple[Cluster, Cluster]]:
        """Pairs at distance < D (the phase-1 candidates of Algorithm 1)."""
        if self._pairs is not None:
            return [
                (row[0], row[1])
                for key in sorted(self._pairs)
                for row in (self._pairs[key],)
                if row[2] < D
            ]
        return [
            (c1, c2)
            for c1, c2 in self.all_pairs()
            if distance(c1.pattern, c2.pattern) < D
        ]

    def iter_pairs(
        self, max_distance: int | None = None
    ) -> Iterator[tuple[Cluster, Cluster, Cluster]]:
        """Yield ``(c1, c2, lca_cluster)`` for every unordered pair.

        Custom greedy criteria (e.g. the pairwise-average variant, the
        Min-Size objective) iterate this instead of rebuilding pair lists
        and re-deriving LCAs per round; with the bitset kernel everything
        comes straight from the pair table.
        """
        if self._pairs is not None:
            for row in self._pairs.values():
                if max_distance is None or row[2] < max_distance:
                    yield row[0], row[1], row[3]
            return
        for c1, c2 in self.all_pairs():
            if (
                max_distance is None
                or distance(c1.pattern, c2.pattern) < max_distance
            ):
                yield c1, c2, self.pool.cluster(lca(c1.pattern, c2.pattern))

    # -- the greedy step ---------------------------------------------------------

    def best_pair(
        self, pairs: Sequence[tuple[Cluster, Cluster]]
    ) -> tuple[Cluster, Cluster]:
        """UpdateSolution's argmax: the pair maximizing the merged objective.

        Ties are broken by the smallest (LCA pattern, pair patterns) so the
        greedy run is reproducible.
        """
        if not pairs:
            raise ValueError("best_pair() on an empty pair list")
        best = None
        best_key = None
        for c1, c2 in pairs:
            new_avg, merged = self.evaluate_pair(c1, c2)
            key = (-new_avg, merged.pattern, c1.pattern, c2.pattern)
            if best_key is None or key < best_key:
                best_key = key
                best = (c1, c2)
        assert best is not None
        return best

    def best_violating_pair(
        self, D: int
    ) -> tuple[Cluster, Cluster] | None:
        """The best pair at distance < D, or None when no pair violates D.

        With the bitset kernel this works off the persistent pair table (no
        list materialization, no distance or LCA recomputation) — a lazy
        heap pop-and-refresh under ``argmax="heap"``, a full group scan
        under ``argmax="scan"``; the python kernel falls back to the naive
        enumeration.  All paths pick by the exact same key as
        :meth:`best_pair`.
        """
        _budget_checkpoint()
        if self._pairs is not None:
            return self._best_group(D)
        pairs = self.violating_pairs(D)
        if not pairs:
            return None
        return self.best_pair(pairs)

    def best_any_pair(self) -> tuple[Cluster, Cluster] | None:
        """The best pair over all pairs, or None when |O| < 2."""
        _budget_checkpoint()
        if self._pairs is not None:
            return self._best_group(None)
        pairs = self.all_pairs()
        if not pairs:
            return None
        return self.best_pair(pairs)

    def _best_group(
        self, max_distance: int | None
    ) -> tuple[Cluster, Cluster] | None:
        """Dispatch the per-round LCA-group argmax to heap or scan."""
        self.stats["argmax_rounds"] += 1.0
        if self._heap_argmax:
            return self._heap_best(max_distance)
        return self._scan_best(max_distance)

    def _scan_best(
        self, max_distance: int | None
    ) -> tuple[Cluster, Cluster] | None:
        """Argmax over the pair table with the canonical tie-break key.

        Equivalent to :meth:`best_pair` over the same pairs — maximize the
        merged objective, break ties by the smallest (LCA pattern, first
        pattern, second pattern) — but it scans the LCA *groups*: all pairs
        in a group share their distance and their post-merge objective, so
        each group costs one (delta-cached) marginal evaluation and the
        winning pair is the lexicographically smallest key inside the
        winning group.  Per round this is O(#distinct LCAs) instead of
        O(|O|^2) evaluations.
        """
        by_lca = self._by_lca
        assert by_lca is not None
        covered_sum = self._covered_sum
        covered_cnt = self._covered_mask.bit_count()
        marginal = self._marginal_bitset
        best_group = None
        best_pattern = None
        best_avg = float("-inf")
        evals = 0
        for pattern, group in by_lca.items():
            if max_distance is not None and group[0] >= max_distance:
                continue
            delta_sum, delta_cnt = marginal(group[1])
            evals += 1
            new_avg = (covered_sum + delta_sum) / (covered_cnt + delta_cnt)
            if new_avg < best_avg:
                continue
            if new_avg > best_avg or pattern < best_pattern:
                best_avg = new_avg
                best_pattern = pattern
                best_group = group
        self.stats["argmax_groups"] += evals
        self.stats["argmax_evals"] += evals
        if best_group is None:
            return None
        row = best_group[2][min(best_group[2])]
        return row[0], row[1]

    def _build_heap(self, max_distance: int | None) -> _ArgmaxHeap:
        """(Re)seed the lazy heap for one distance filter with exact bounds.

        Costs one full group evaluation (the same work as a single scan
        round); every later round then only refreshes the groups whose
        bounds still compete.  The evaluations land in the delta cache, so
        the first :meth:`_heap_best` against the fresh heap re-reads them
        for free.  Also serves as the periodic rebuild that resets
        ``s_floor`` once covered-sum drift has loosened the stop bound.
        """
        by_lca = self._by_lca
        assert by_lca is not None
        covered_sum = self._covered_sum
        covered_cnt = self._covered_mask.bit_count()
        heap = _ArgmaxHeap(covered_sum)
        marginal = self._marginal_bitset
        meta = heap.meta
        entries = heap.entries
        for pattern, group in by_lca.items():
            if max_distance is not None and group[0] >= max_distance:
                continue
            delta_sum, delta_cnt = marginal(group[1])
            priority = (covered_sum + delta_sum) / (covered_cnt + delta_cnt)
            meta[pattern] = (priority, delta_sum, covered_cnt + delta_cnt)
            entries.append((-priority, pattern))
        heapify(entries)
        self.stats["argmax_evals"] += len(meta)
        self._heaps[max_distance] = heap
        return heap

    def _reprioritize_heap(self, heap: _ArgmaxHeap) -> None:
        """Reset drift by recomputing every priority from its stale bounds.

        No marginal is evaluated: each group's stored ``(stale_sum,
        stale_mass)`` is re-expressed as a refined bound under the
        *current* covered sum and count (three float ops per group), the
        entry list is rebuilt, and ``s_floor`` snaps to the present — so
        the stop bound is tight again at a fraction of the cost of a full
        evaluation pass.
        """
        covered_sum = self._covered_sum
        covered_cnt = self._covered_mask.bit_count()
        meta = heap.meta
        entries = []
        for pattern, info in meta.items():
            stale_sum = info[1]
            stale_mass = info[2]
            denominator = (
                stale_mass if stale_mass > covered_cnt else covered_cnt
            )
            priority = (
                (covered_sum + stale_sum) / denominator
                if denominator
                else float("inf")
            )
            meta[pattern] = (priority, stale_sum, stale_mass)
            entries.append((-priority, pattern))
        heapify(entries)
        heap.entries = entries
        heap.s_floor = covered_sum

    def _heap_best(
        self, max_distance: int | None
    ) -> tuple[Cluster, Cluster] | None:
        """Lazy-heap argmax: pop stale bounds, refresh, stop when beaten.

        Exact and bit-identical to :meth:`_scan_best`: a popped group is
        re-evaluated with the very same cached-marginal floats and compared
        with the very same ``(avg, LCA pattern)`` key, and a group is only
        skipped or the loop only stopped when an *upper bound* on its
        objective is strictly below the best exact value seen.  Two bounds
        cooperate (see :class:`_ArgmaxHeap` for the ingredients):

        * the per-group **refined bound** ``(S + stale_sum) /
          max(C, stale_mass)`` decides evaluation *skips*.  Its float
          value provably dominates the group's exactly-computed float
          objective — numerators are ascending-order sums of non-negative
          values over supersets, denominator floors are exact ints, and
          IEEE addition/division are monotone — so a skip can never
          swallow a win or a tie, not even at the last ulp.  A skipped
          entry is re-pushed *re-prioritized* at its freshly computed
          bound, so as the solution average falls, once-competitive
          groups sink to their true level instead of being popped again
          every round.
        * the heap-top **stop bound** ``priority + drift`` (drift =
          ``(S - s_floor) / C``, slackened by :data:`_DRIFT_SLACK`)
          decides when to stop popping altogether: it dominates every
          remaining entry's refined bound, so once it falls below the
          best exact value nothing beneath the top can win or tie.  The
          engine rebuilds the heap (resetting ``s_floor``) whenever drift
          exceeds a small fraction of the current average, keeping the
          stop bound tight at an amortized cost of one scan per rebuild.

        Together these make steady-state rounds touch only the
        near-optimal frontier plus newly created groups — sublinear in
        the number of LCA groups — where the scan touches all of them.
        """
        by_lca = self._by_lca
        assert by_lca is not None
        covered_sum = self._covered_sum
        covered_cnt = self._covered_mask.bit_count()
        if len(self._heaps) > 1 or (
            self._heaps and max_distance not in self._heaps
        ):
            # Retire heaps for other distance filters: the greedy phases
            # query one filter at a time (distance phase, then size
            # phase), and a retired heap would otherwise keep absorbing
            # pushes from _register_pairs for the engine's remaining
            # lifetime.  A retired filter queried again simply rebuilds.
            for key in [k for k in self._heaps if k != max_distance]:
                del self._heaps[key]
        heap = self._heaps.get(max_distance)
        drift = 0.0
        fresh_build = False
        if heap is None:
            heap = self._build_heap(max_distance)
            fresh_build = True
        elif covered_cnt:
            drift = (covered_sum - heap.s_floor) / covered_cnt
            # Reprioritizing costs three float ops per group and resets
            # drift to zero; do it as soon as drift would start popping
            # more than the true near-optimal frontier.
            if drift > _REBUILD_DRIFT_FRACTION * (covered_sum / covered_cnt):
                self._reprioritize_heap(heap)
                drift = 0.0
        entries = heap.entries
        meta = heap.meta
        marginal = self._marginal_bitset
        best_group = None
        best_pattern = None
        best_avg = float("-inf")
        evals = 0
        skips = 0
        pops = 0
        touched: set[Pattern] = set()
        repush: list[tuple[float, Pattern]] = []
        while entries:
            neg_priority, pattern = entries[0]
            group = by_lca.get(pattern)
            info = meta.get(pattern)
            if group is None or info is None or info[0] != -neg_priority:
                heappop(entries)  # dissolved group or superseded entry
                pops += 1
                continue
            if pattern in touched:
                heappop(entries)  # same-priority duplicate, handled above
                pops += 1
                continue
            if best_group is not None:
                if (-neg_priority + drift) * _DRIFT_SLACK < best_avg:
                    break  # stop bound: nothing below can win or tie
                stale_sum = info[1]
                stale_mass = info[2]
                denominator = (
                    stale_mass if stale_mass > covered_cnt else covered_cnt
                )
                refined = (covered_sum + stale_sum) / denominator
                if refined < best_avg:
                    # Refined skip: provably cannot win or tie; sink the
                    # entry to its current bound and move on unevaluated.
                    heappop(entries)
                    pops += 1
                    skips += 1
                    touched.add(pattern)
                    meta[pattern] = (refined, stale_sum, stale_mass)
                    repush.append((-refined, pattern))
                    continue
            heappop(entries)
            pops += 1
            delta_sum, delta_cnt = marginal(group[1])
            if not fresh_build:
                # On a build round every state was just stamped by
                # _build_heap (already counted there); these reads are
                # delta-cache hits, not additional evaluations.
                evals += 1
            touched.add(pattern)
            new_avg = (covered_sum + delta_sum) / (covered_cnt + delta_cnt)
            meta[pattern] = (new_avg, delta_sum, covered_cnt + delta_cnt)
            repush.append((-new_avg, pattern))
            if new_avg < best_avg:
                continue
            if new_avg > best_avg or pattern < best_pattern:
                best_avg = new_avg
                best_pattern = pattern
                best_group = group
        if len(repush) > max(64, len(entries) // 4):
            entries.extend(repush)
            heapify(entries)
        else:
            for entry in repush:
                heappush(entries, entry)
        self.stats["argmax_groups"] += len(meta)
        self.stats["argmax_evals"] += evals
        self.stats["argmax_skips"] += skips
        self.stats["argmax_pops"] += pops
        if pops > self.stats["argmax_pops_max"]:
            self.stats["argmax_pops_max"] = float(pops)
        if best_group is None:
            return None
        row = best_group[2][min(best_group[2])]
        return row[0], row[1]

    # -- pair table maintenance ------------------------------------------------

    def _register_pairs(self, cluster: Cluster) -> None:
        """Add table rows pairing *cluster* with every current member."""
        pairs = self._pairs
        by_lca = self._by_lca
        assert pairs is not None and by_lca is not None
        pool_cluster = self.pool.cluster
        pattern = cluster.pattern
        heaps = self._heaps
        covered_cnt = self._covered_mask.bit_count() if heaps else 0
        covered_sum = self._covered_sum
        for other in self._solution.values():
            if other.pattern < pattern:
                first, second = other, cluster
            else:
                first, second = cluster, other
            joined, dist = lca_and_distance(first.pattern, second.pattern)
            key = (first.pattern, second.pattern)
            group = by_lca.get(joined)
            if group is None:
                merged = pool_cluster(joined)
                row = (first, second, dist, merged)
                by_lca[joined] = (dist, merged, {key: row})
                # A brand-new group enters every live heap whose filter it
                # matches, bounded by the LCA's *total* value sum — with
                # non-negative values (the heap's precondition) that
                # dominates any marginal sum, so laziness stays sound
                # without evaluating the newcomer here.  (During __init__
                # no heap exists yet; builds snapshot the full table.)
                for filter_distance, heap in heaps.items():
                    if filter_distance is None or dist < filter_distance:
                        priority = (
                            (covered_sum + merged.value_sum) / covered_cnt
                            if covered_cnt
                            else float("inf")
                        )
                        heap.meta[joined] = (
                            priority, merged.value_sum, 0,
                        )
                        heappush(heap.entries, (-priority, joined))
            else:
                row = (first, second, dist, group[1])
                group[2][key] = row
            pairs[key] = row

    def _replace_clusters(
        self, removed: list[Pattern], merged: Cluster
    ) -> None:
        """Drop *removed* from the solution (and pair table), insert
        *merged*: the O(|O|) per-merge structural update."""
        solution = self._solution
        for pattern in removed:
            del solution[pattern]
        pairs = self._pairs
        if pairs is not None:
            by_lca = self._by_lca
            assert by_lca is not None

            def drop(key: tuple[Pattern, Pattern]) -> None:
                row = pairs.pop(key, None)
                if row is None:
                    return
                joined = row[3].pattern
                group = by_lca[joined]
                del group[2][key]
                if not group[2]:
                    del by_lca[joined]
                    # Dissolved groups leave the heaps lazily: clearing the
                    # bound invalidates their entries, which are discarded
                    # on pop.
                    for heap in self._heaps.values():
                        heap.meta.pop(joined, None)

            for pattern in removed:
                for other in solution:
                    drop(
                        (pattern, other)
                        if pattern < other
                        else (other, pattern)
                    )
            for i, pattern in enumerate(removed):
                for other in removed[i + 1:]:
                    drop(
                        (pattern, other)
                        if pattern < other
                        else (other, pattern)
                    )
        if merged.pattern not in solution:
            if pairs is not None:
                self._register_pairs(merged)
            solution[merged.pattern] = merged

    def _advance_round(self) -> None:
        """Bump the round counter and record the covered-union snapshot.

        Every 64 rounds, delta states that slept for more than a full
        window are evicted (their next touch is an ordinary full
        recompute, exactly as if never cached) and the history is pruned
        below the oldest surviving stamp — so both the log and the worst
        case delta cache staleness stay bounded at ~two windows instead
        of growing with the engine's lifetime.
        """
        self.rounds += 1
        if self._masked:
            self._cover_log[self.rounds] = self._covered_mask
            self._diff_since_cache.clear()
            if self.rounds % 64 == 0 and len(self._cover_log) > 64:
                cache = self._delta_cache
                horizon = self.rounds - 64
                for pattern in [
                    p for p, state in cache.items() if state.stamp < horizon
                ]:
                    del cache[pattern]
                floor = min(
                    (state.stamp for state in cache.values()),
                    default=self.rounds,
                )
                for stamp in [r for r in self._cover_log if r < floor]:
                    del self._cover_log[stamp]

    def _absorb_coverage(self, merged: Cluster) -> None:
        """Fold cov(*merged*) into T, recording the per-round difference."""
        if self._masked:
            fresh = merged.mask & ~self._covered_mask
            if fresh:
                self._covered_mask |= fresh
                self._covered_sum += self.answers.mask_value_sum(fresh)
        else:
            values = self.answers.values
            diff = [i for i in merged.covered if i not in self._covered]
            for index in diff:
                self._covered.add(index)
                self._covered_sum += values[index]
            self._last_diff = diff

    def merge(self, c1: Cluster, c2: Cluster) -> Cluster:
        """Apply Merge(O, c1, c2): replace by the LCA, drop covered clusters.

        Returns the new cluster.  Updates the covered union, the round
        counter, the difference list/mask that delta judgment consumes, and
        (bitset kernel) the pair table.
        """
        if c1.pattern not in self._solution or c2.pattern not in self._solution:
            raise ValueError("merge() on clusters not in the current solution")
        merged = self._merged_cluster(c1, c2)
        self._absorb_coverage(merged)
        removed = [
            pattern
            for pattern in self._solution
            if strictly_covers(merged.pattern, pattern)
        ]
        for pattern in (c1.pattern, c2.pattern):
            if pattern != merged.pattern and pattern not in removed:
                removed.append(pattern)
        self._replace_clusters(removed, merged)
        self._advance_round()
        return merged

    def add(self, cluster: Cluster) -> None:
        """Insert a cluster (used by Fixed-Order when a top element fits).

        The caller is responsible for constraint checks; this just keeps the
        covered union, the delta bookkeeping, and the pair table consistent.
        """
        if cluster.pattern in self._solution:
            return
        self._absorb_coverage(cluster)
        if self._pairs is not None:
            self._register_pairs(cluster)
        self._solution[cluster.pattern] = cluster
        self._advance_round()

    def merge_into(self, existing: Cluster, incoming: Cluster) -> Cluster:
        """Merge an *incoming* cluster (not yet in O) with an existing one.

        Fixed-Order's variant of Merge: the incoming singleton is combined
        with a chosen member of O; the LCA replaces the member and swallows
        any newly covered clusters.
        """
        if existing.pattern not in self._solution:
            raise ValueError("merge_into() target not in the current solution")
        merged = self.pool.cluster(lca(existing.pattern, incoming.pattern))
        self._absorb_coverage(merged)
        removed = [
            pattern
            for pattern in self._solution
            if strictly_covers(merged.pattern, pattern)
        ]
        if (
            existing.pattern != merged.pattern
            and existing.pattern not in removed
        ):
            removed.append(existing.pattern)
        self._replace_clusters(removed, merged)
        self._advance_round()
        return merged

    def min_pairwise_distance(self) -> int:
        """Minimum pairwise distance in O (m+1 when |O| < 2)."""
        if len(self._solution) < 2:
            return self.answers.m + 1
        if self._pairs is not None:
            return min(row[2] for row in self._pairs.values())
        return min(
            distance(c1.pattern, c2.pattern)
            for c1, c2 in self.all_pairs()
        )
