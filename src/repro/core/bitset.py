"""Bitset coverage kernel: element sets as arbitrary-precision int masks.

The greedy algorithms spend almost all of their time asking two questions
about element sets: "how many elements of cov(c) are not yet covered?" and
"what is the sum of their values?".  The pure-Python representation
(``frozenset`` of element indices) answers both with interpreted loops.
This module provides the bitset representation used by the optimized
kernel: the covered set of a cluster (and the running covered union ``T``
of a solution) is an ``int`` whose bit *i* is set iff element *i* (by rank
in the :class:`~repro.core.answers.AnswerSet`) is covered.  Then

* membership is ``(mask >> i) & 1``,
* set difference is ``a & ~b``,
* the marginal *count* is ``(cand & ~covered).bit_count()``,

all of which run at C speed on machine words.  Value *sums* over a mask
cannot be answered by popcount; :func:`mask_value_sum` iterates only the
set bits (sparse masks) or only the non-zero bytes (dense masks), which in
practice is 1-2 orders of magnitude faster than iterating a Python set.

Kernels are named: ``"bitset"`` (this module, the default), ``"python"``
(the original set-based code, kept as the ablation baseline for the
Figure 8b-style experiments), and ``"dense"`` (fixed-width uint64 block
masks with numpy-vectorized primitives and a pure-stdlib array fallback —
:mod:`repro.core.dense` — built for n >= 10^5..10^6).  ``"auto"`` is a
*policy*, not a kernel: :func:`resolve_kernel` maps it to ``"dense"``
above :data:`DENSE_AUTO_THRESHOLD` elements when numpy is available and
to the default otherwise.  All kernels run identical greedy logic, sum
values in ascending element-index order, and produce identical solutions
whenever value sums are exact (property tests enforce this on
dyadic-rational values); on arbitrary floats the ``python`` kernel sums
in set-iteration order, so exact ties may break differently at the last
ulp.

The three primitives in one glance::

    >>> from repro.core.bitset import bitset_of, iter_bits, mask_value_sum
    >>> mask = bitset_of([0, 2, 5])
    >>> bin(mask)
    '0b100101'
    >>> list(iter_bits(mask))
    [0, 2, 5]
    >>> mask_value_sum([1.0, 9.0, 2.0, 9.0, 9.0, 3.0], mask)
    6.0

``mask_value_sum`` always adds in ascending index order, which is what
makes subset sums float-monotone — the property the merge engine's lazy
heap argmax leans on for its upper bounds (:mod:`repro.core.merge`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.common.errors import InvalidParameterError

#: The optimized int-mask kernel (default).
BITSET_KERNEL = "bitset"
#: The original pure-Python set kernel (ablation baseline).
PYTHON_KERNEL = "python"
#: The packed uint64-block kernel (numpy-vectorized, array fallback).
DENSE_KERNEL = "dense"
#: Every concrete kernel name the engines accept.
KERNELS = (BITSET_KERNEL, PYTHON_KERNEL, DENSE_KERNEL)
#: What engines run when no kernel is requested.
DEFAULT_KERNEL = BITSET_KERNEL
#: The size-based kernel policy: resolved per instance, never run as-is.
AUTO_KERNEL = "auto"
#: What requests/CLI may carry: every kernel plus the auto policy.
KERNEL_CHOICES = KERNELS + (AUTO_KERNEL,)
#: ``kernel="auto"`` selects the dense kernel at or above this answer-set
#: size, provided numpy is importable (the stdlib fallback tracks the
#: bitset kernel, so switching without numpy buys nothing).  Calibrated
#: on the ``dense_scaling`` benchmark: at 64k elements the two kernels
#: are at parity, from ~10^5 dense wins ~3x, at 10^6 ~4.5x.
DENSE_AUTO_THRESHOLD = 1 << 16

#: Bit offsets set in each possible byte value; drives the dense-sum path.
_BYTE_BITS: tuple[tuple[int, ...], ...] = tuple(
    tuple(b for b in range(8) if (value >> b) & 1) for value in range(256)
)

#: Masks with at most this many set bits take the per-bit (sparse) path.
_SPARSE_LIMIT = 96


def resolve_kernel(kernel: str | None, n: int | None = None) -> str:
    """Resolve a kernel request to the concrete kernel an engine will run.

    ``None`` resolves to :data:`DEFAULT_KERNEL`.  ``"auto"`` applies the
    size policy: :data:`DENSE_KERNEL` when the instance size *n* is known,
    at least :data:`DENSE_AUTO_THRESHOLD`, and numpy is available —
    otherwise the default.  Concrete names pass through after validation.
    Every layer that resolves (pool construction, merge engine, service
    cache keys) passes the same *n*, so one request resolves identically
    everywhere.
    """
    if kernel is None:
        return DEFAULT_KERNEL
    if kernel == AUTO_KERNEL:
        if n is not None and n >= DENSE_AUTO_THRESHOLD:
            from repro.core.dense import numpy_enabled

            if numpy_enabled():
                return DENSE_KERNEL
        return DEFAULT_KERNEL
    if kernel not in KERNELS:
        raise InvalidParameterError(
            "unknown kernel %r; expected one of %r" % (kernel, KERNEL_CHOICES)
        )
    return kernel


def bitset_of(indices: Iterable[int]) -> int:
    """The int mask with exactly the bits in *indices* set.

    Built through a ``bytearray`` so the cost is O(max_index / 8 + len),
    independent of how the indices are ordered; much faster than folding
    ``1 << i`` shifts for large index sets.
    """
    ids = indices if isinstance(indices, (list, tuple)) else list(indices)
    if not ids:
        return 0
    buf = bytearray((max(ids) >> 3) + 1)
    for index in ids:
        buf[index >> 3] |= 1 << (index & 7)
    return int.from_bytes(buf, "little")


def splice_mask(mask: int, positions: Sequence[int]) -> int:
    """Insert cleared bits into *mask* at *positions* (ascending).

    Each position is in the coordinates of the *final* universe — the rank
    an appended element occupies after the
    :meth:`~repro.core.answers.AnswerSet.extended` re-sort — so processing
    them in ascending order keeps every later position valid as bits shift
    up.  This is how incremental pool maintenance relocates an existing
    coverage mask into the grown universe: splice zero bits where the new
    elements landed, then OR in the new elements the pattern covers.

    >>> bin(splice_mask(0b111, [1, 3]))
    '0b10101'
    """
    for position in positions:
        low = mask & ((1 << position) - 1)
        mask = ((mask >> position) << (position + 1)) | low
    return mask


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of set bits in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_value_sum(values: Sequence[float], mask: int) -> float:
    """Sum ``values[i]`` over the set bits of *mask*, in ascending order.

    Sparse masks (popcount <= ~100) iterate bit by bit; dense masks walk
    the mask's bytes and skip zero bytes, giving O(n/8) plus one add per
    set bit.  Both paths add in ascending index order, so the result is
    deterministic for a given mask.
    """
    if not mask:
        return 0.0
    total = 0.0
    if mask.bit_count() <= _SPARSE_LIMIT:
        while mask:
            low = mask & -mask
            total += values[low.bit_length() - 1]
            mask ^= low
        return total
    base = 0
    byte_bits = _BYTE_BITS
    for byte in mask.to_bytes((mask.bit_length() + 7) >> 3, "little"):
        if byte:
            for offset in byte_bits[byte]:
                total += values[base + offset]
        base += 8
    return total


class _IntMaskOps:
    """Cold-path helpers over int masks (the bitset kernel's counterpart
    to :data:`repro.core.dense.DENSE_MASK_OPS`; hot paths use the int
    operators directly)."""

    __slots__ = ()

    @staticmethod
    def empty(nbits: int) -> int:
        return 0

    @staticmethod
    def test(mask: int, index: int) -> bool:
        return bool((mask >> index) & 1)

    @staticmethod
    def indices(mask: int) -> Iterator[int]:
        return iter_bits(mask)


#: The int-mask kernels' engine-facing cold-path helpers.
INT_MASK_OPS = _IntMaskOps()
