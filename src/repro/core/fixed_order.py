"""The Fixed-Order greedy algorithm (Algorithm 3) and its variants.

Fixed-Order processes the top-L elements once, in descending value order.
Each element is (a) skipped if already covered, (b) added as a singleton if
the size budget and the distance constraint allow, or (c) greedily merged
into an existing cluster (choosing the merge that maximizes the resulting
solution average).  All constraints hold after every step, so the final
solution is feasible; the search space is linear in L rather than quadratic,
which is why Fixed-Order is the fastest of the three greedy algorithms
(Figure 6a) at some cost in quality (Figure 6b).

The two randomized variants of Section 5.2 — ``random`` (seed the solution
with k random top-L elements) and ``k-means`` (seed with the minimal
covering patterns of a k-modes clustering of the top-L) — are implemented
here as well; the paper finds neither improves on plain Fixed-Order.
"""

from __future__ import annotations

import random as _random
from typing import Sequence

from repro.common.errors import InvalidParameterError
from repro.core.cluster import Cluster, Pattern, distance, lca_many
from repro.core.merge import MergeEngine
from repro.core.semilattice import ClusterPool
from repro.core.solution import Solution, floor_at_root


def _validate(pool: ClusterPool, k: int, D: int) -> None:
    if k < 1:
        raise InvalidParameterError("k=%d must be >= 1" % k)
    if not 0 <= D <= pool.answers.m + 1:
        raise InvalidParameterError(
            "D=%d out of range [0, %d]" % (D, pool.answers.m + 1)
        )


def _process_incoming(engine: MergeEngine, incoming: Cluster, k: int, D: int) -> None:
    """One iteration of Algorithm 3's loop body for an incoming cluster."""
    if engine.is_fully_covered(incoming):
        return
    current = engine.clusters()
    if engine.size < k:
        clear = all(
            distance(incoming.pattern, member.pattern) >= D
            for member in current
        )
        if clear:
            engine.add(incoming)
            return
        near = [
            member
            for member in current
            if distance(incoming.pattern, member.pattern) < D
        ]
        target = _best_merge_target(engine, incoming, near)
        engine.merge_into(target, incoming)
        return
    target = _best_merge_target(engine, incoming, current)
    engine.merge_into(target, incoming)


def _best_merge_target(
    engine: MergeEngine, incoming: Cluster, candidates: Sequence[Cluster]
) -> Cluster:
    """The UpdateSolution argmax over pairs (member, incoming)."""
    best = None
    best_key = None
    for member in candidates:
        new_avg, merged = engine.evaluate_pair(member, incoming)
        key = (-new_avg, merged.pattern, member.pattern)
        if best_key is None or key < best_key:
            best_key = key
            best = member
    if best is None:
        raise ValueError("no merge candidates available")
    return best


def fixed_order(
    pool: ClusterPool,
    k: int,
    D: int,
    use_delta: bool = True,
    size_budget: int | None = None,
    kernel: str | None = None,
    argmax: str | None = None,
) -> Solution:
    """Run Algorithm 3 on the pool's (S, L) with parameters (k, D).

    *size_budget* overrides the cluster budget used while processing (the
    Hybrid algorithm passes ``c * k`` here); the default is k itself.
    """
    _validate(pool, k, D)
    budget = k if size_budget is None else size_budget
    if budget < 1:
        raise InvalidParameterError("size budget must be >= 1")
    engine = MergeEngine(
        pool, (), use_delta=use_delta, kernel=kernel, argmax=argmax
    )
    for index in pool.answers.top(pool.L):
        _process_incoming(engine, pool.singleton(index), budget, D)
    return floor_at_root(engine.snapshot(), pool)


def fixed_order_engine(
    pool: ClusterPool,
    budget: int,
    D: int,
    use_delta: bool = True,
    kernel: str | None = None,
    argmax: str | None = None,
) -> MergeEngine:
    """Like :func:`fixed_order` but return the live engine (Hybrid and the
    precomputation pipeline continue merging from this state).

    ``argmax`` matters here even though Fixed-Order itself never runs the
    group argmax: the returned engine's Bottom-Up continuation (Hybrid
    phase 2, the precompute sweeps) inherits it.
    """
    _validate(pool, max(budget, 1), D)
    engine = MergeEngine(
        pool, (), use_delta=use_delta, kernel=kernel, argmax=argmax
    )
    for index in pool.answers.top(pool.L):
        _process_incoming(engine, pool.singleton(index), budget, D)
    return engine


def random_fixed_order(
    pool: ClusterPool,
    k: int,
    D: int,
    seed: int = 0,
    kernel: str | None = None,
) -> Solution:
    """random-Fixed-Order: process k random top-L elements first, then all
    top-L elements in descending-value order (Section 5.2)."""
    _validate(pool, k, D)
    rng = _random.Random(seed)
    top = pool.answers.top(pool.L)
    chosen = rng.sample(top, min(k, len(top)))
    engine = MergeEngine(pool, (), kernel=kernel)
    for index in chosen:
        _process_incoming(engine, pool.singleton(index), k, D)
    for index in top:
        _process_incoming(engine, pool.singleton(index), k, D)
    return floor_at_root(engine.snapshot(), pool)


def minimal_covering_pattern(elements: Sequence[Pattern]) -> Pattern:
    """The minimal pattern covering all *elements*: attribute-wise common
    value, else ``*`` — i.e. the LCA of the elements."""
    return lca_many(elements)


def kmeans_fixed_order(
    pool: ClusterPool,
    k: int,
    D: int,
    seed: int = 0,
    max_iterations: int = 20,
    kernel: str | None = None,
) -> Solution:
    """k-means-Fixed-Order: cluster the top-L elements with k-modes (random
    seeding), cover each resulting group with its minimal pattern, process
    those k patterns first, then the top-L elements (Section 5.2)."""
    from repro.baselines.kmodes import kmodes

    _validate(pool, k, D)
    top = pool.answers.top(pool.L)
    points = [pool.answers.elements[i] for i in top]
    assignment = kmodes(points, k=min(k, len(points)), seed=seed,
                        max_iterations=max_iterations)
    groups: dict[int, list[Pattern]] = {}
    for point, label in zip(points, assignment.labels):
        groups.setdefault(label, []).append(point)
    seed_patterns = sorted(
        minimal_covering_pattern(members) for members in groups.values()
    )
    engine = MergeEngine(pool, (), kernel=kernel)
    for pattern in seed_patterns:
        _process_incoming(engine, pool.cluster(pattern), k, D)
    for index in top:
        _process_incoming(engine, pool.singleton(index), k, D)
    return floor_at_root(engine.snapshot(), pool)
