"""Problem instances and the top-level ``summarize`` entry point.

:class:`ProblemInstance` bundles an :class:`~repro.core.answers.AnswerSet`
with the three user parameters of Definition 4.1 — size k, coverage L,
distance D — validates them, and lazily materializes the cluster pool.
:func:`summarize` is the one-call API most examples use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Literal

from repro.common.errors import InvalidParameterError
from repro.core.answers import AnswerSet
from repro.core.semilattice import ClusterPool, MappingStrategy
from repro.core.solution import Solution

AlgorithmName = Literal[
    "bottom-up",
    "fixed-order",
    "hybrid",
    "brute-force",
    "lower-bound",
    "bottom-up-level",
    "bottom-up-pairwise",
    "random-fixed-order",
    "kmeans-fixed-order",
]


@dataclass
class ProblemInstance:
    """An (S, k, L, D) instance of the Max-Avg summarization problem.

    Parameter semantics follow Section 4.1: all three parameters are
    optional in spirit — ``D=0`` disables the distance constraint, ``L``
    defaults to k (cover the original top-k), and ``k`` defaults to n (no
    size limit).  ``L=0`` (no coverage constraint) is normalized to ``L=1``
    for the algorithms, which matches the paper's suggestion of covering at
    least the single highest-valued element.
    """

    answers: AnswerSet
    k: int
    L: int
    D: int
    mapping: MappingStrategy = "eager"
    _pool: ClusterPool | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        n, m = self.answers.n, self.answers.m
        if not 1 <= self.k <= n:
            raise InvalidParameterError(
                "k=%d out of range [1, %d]" % (self.k, n)
            )
        if not 0 <= self.L <= n:
            raise InvalidParameterError(
                "L=%d out of range [0, %d]" % (self.L, n)
            )
        if not 0 <= self.D <= m:
            raise InvalidParameterError(
                "D=%d out of range [0, %d]" % (self.D, m)
            )
        if self.L == 0:
            self.L = 1

    @property
    def pool(self) -> ClusterPool:
        """The cluster pool for (S, L), built on first access."""
        if self._pool is None or self._pool.L != self.L:
            self._pool = ClusterPool(
                self.answers, self.L, strategy=self.mapping
            )
        return self._pool

    def solve(self, algorithm: AlgorithmName = "hybrid", **kwargs) -> Solution:
        """Run the chosen algorithm; see :data:`ALGORITHMS` for names."""
        try:
            runner = ALGORITHMS[algorithm]
        except KeyError:
            raise InvalidParameterError(
                "unknown algorithm %r; expected one of %s"
                % (algorithm, sorted(ALGORITHMS))
            ) from None
        return runner(self, **kwargs)


def _run_bottom_up(instance: ProblemInstance, **kwargs) -> Solution:
    from repro.core.bottom_up import bottom_up

    return bottom_up(instance.pool, instance.k, instance.D, **kwargs)


def _run_bottom_up_level(instance: ProblemInstance, **kwargs) -> Solution:
    from repro.core.bottom_up import bottom_up_level_start

    return bottom_up_level_start(instance.pool, instance.k, instance.D, **kwargs)


def _run_bottom_up_pairwise(instance: ProblemInstance, **kwargs) -> Solution:
    from repro.core.bottom_up import bottom_up_pairwise_avg

    return bottom_up_pairwise_avg(instance.pool, instance.k, instance.D, **kwargs)


def _run_fixed_order(instance: ProblemInstance, **kwargs) -> Solution:
    from repro.core.fixed_order import fixed_order

    return fixed_order(instance.pool, instance.k, instance.D, **kwargs)


def _run_random_fixed_order(instance: ProblemInstance, **kwargs) -> Solution:
    from repro.core.fixed_order import random_fixed_order

    return random_fixed_order(instance.pool, instance.k, instance.D, **kwargs)


def _run_kmeans_fixed_order(instance: ProblemInstance, **kwargs) -> Solution:
    from repro.core.fixed_order import kmeans_fixed_order

    return kmeans_fixed_order(instance.pool, instance.k, instance.D, **kwargs)


def _run_hybrid(instance: ProblemInstance, **kwargs) -> Solution:
    from repro.core.hybrid import hybrid

    return hybrid(instance.pool, instance.k, instance.D, **kwargs)


def _run_brute_force(instance: ProblemInstance, **kwargs) -> Solution:
    from repro.core.brute_force import brute_force

    return brute_force(instance.pool, instance.k, instance.D, **kwargs)


def _run_lower_bound(instance: ProblemInstance, **kwargs) -> Solution:
    from repro.core.brute_force import lower_bound

    return lower_bound(instance.pool, **kwargs)


ALGORITHMS: dict[str, Callable[..., Solution]] = {
    "bottom-up": _run_bottom_up,
    "bottom-up-level": _run_bottom_up_level,
    "bottom-up-pairwise": _run_bottom_up_pairwise,
    "fixed-order": _run_fixed_order,
    "random-fixed-order": _run_random_fixed_order,
    "kmeans-fixed-order": _run_kmeans_fixed_order,
    "hybrid": _run_hybrid,
    "brute-force": _run_brute_force,
    "lower-bound": _run_lower_bound,
}


def summarize(
    answers: AnswerSet,
    k: int,
    L: int,
    D: int,
    algorithm: AlgorithmName = "hybrid",
    mapping: MappingStrategy = "eager",
    **kwargs,
) -> Solution:
    """Summarize an answer set with at most k clusters covering the top-L,
    pairwise distance >= D — the paper's core operation in one call.

    >>> from repro.core.answers import AnswerSet
    >>> answers = AnswerSet.from_rows(
    ...     [("a", "x"), ("a", "y"), ("b", "x")], [3.0, 2.0, 1.0])
    >>> solution = summarize(answers, k=1, L=2, D=0)
    >>> solution.size
    1
    """
    instance = ProblemInstance(answers, k=k, L=L, D=D, mapping=mapping)
    return instance.solve(algorithm, **kwargs)
