"""Problem instances and the top-level ``summarize`` entry point.

:class:`ProblemInstance` bundles an :class:`~repro.core.answers.AnswerSet`
with the three user parameters of Definition 4.1 — size k, coverage L,
distance D — validates them, and lazily materializes the cluster pool.

The paper's nine algorithms register themselves here with
:func:`~repro.core.registry.register_algorithm`; new front ends should
resolve algorithms through :mod:`repro.core.registry` (or, one level up,
submit requests through :class:`repro.service.Engine`).  The module-level
``ALGORITHMS`` mapping and the one-call :func:`summarize` helper remain as
deprecated shims for pre-service-layer code.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Literal

from repro.common.errors import InvalidParameterError
from repro.core.answers import AnswerSet
from repro.core.bitset import DENSE_KERNEL, PYTHON_KERNEL, resolve_kernel
from repro.core.registry import (
    AlgorithmsView,
    get_algorithm,
    register_algorithm,
    validate_algorithm_kwargs,
)
from repro.core.semilattice import ClusterPool, MappingStrategy
from repro.core.solution import Solution

AlgorithmName = Literal[
    "bottom-up",
    "fixed-order",
    "hybrid",
    "brute-force",
    "lower-bound",
    "bottom-up-level",
    "bottom-up-pairwise",
    "random-fixed-order",
    "kmeans-fixed-order",
]


@dataclass
class ProblemInstance:
    """An (S, k, L, D) instance of the Max-Avg summarization problem.

    Parameter semantics follow Section 4.1: all three parameters are
    optional — ``D=0`` disables the distance constraint, ``L=None``
    defaults to k (cover the original top-k), and ``k=None`` defaults to n
    (no size limit).  ``L=0`` (no coverage constraint) is normalized to
    ``L=1``, which matches the paper's suggestion of covering at least the
    single highest-valued element.  Normalization happens once, before
    validation, so the stored fields are the effective values the
    algorithms run with.
    """

    answers: AnswerSet
    k: int | None = None
    L: int | None = None
    D: int = 0
    mapping: MappingStrategy = "eager"
    mask_only: bool = False
    _pool: ClusterPool | None = field(default=None, repr=False)
    _dense_pool: ClusterPool | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        n, m = self.answers.n, self.answers.m
        # Resolve the optional parameters to their effective values first;
        # validation then sees exactly what the algorithms will see.
        if self.k is None:
            self.k = n
        if self.L is None:
            self.L = self.k
        elif self.L == 0:
            self.L = 1
        if not 1 <= self.k <= n:
            raise InvalidParameterError(
                "k=%d out of range [1, %d]" % (self.k, n)
            )
        if not 1 <= self.L <= n:
            raise InvalidParameterError(
                "L=%d out of range [0, %d]" % (self.L, n)
            )
        if not 0 <= self.D <= m:
            raise InvalidParameterError(
                "D=%d out of range [0, %d]" % (self.D, m)
            )

    @property
    def pool(self) -> ClusterPool:
        """The cluster pool for (S, L), built on first access (the int
        mask representation shared by the bitset/python kernels)."""
        return self.pool_for(None)

    def pool_for(self, kernel: str | None) -> ClusterPool:
        """The cluster pool whose mask representation matches *kernel*.

        The bitset and python kernels share int-bitmask pools; the dense
        kernel needs packed-block masks, so it gets (and caches) its own
        pool.  The python kernel only consumes frozenset coverage, which
        both representations serve identically, so it reuses whichever
        pool already exists.  ``kernel="auto"`` resolves through the
        size policy first (:func:`repro.core.bitset.resolve_kernel`), so
        the pool a runner sees always agrees with the kernel its merge
        engine resolves.
        """
        resolved = resolve_kernel(kernel, n=self.answers.n)
        want_dense = resolved == DENSE_KERNEL
        tolerant = resolved == PYTHON_KERNEL
        for candidate in (self._pool, self._dense_pool):
            if candidate is None or candidate.L != self.L:
                continue
            if tolerant or (candidate.kernel == DENSE_KERNEL) == want_dense:
                return candidate
        built = ClusterPool(
            self.answers,
            self.L,
            strategy=self.mapping,
            mask_only=self.mask_only,
            kernel=DENSE_KERNEL if want_dense else None,
        )
        if want_dense:
            self._dense_pool = built
        else:
            self._pool = built
        return built

    def adopt_pool(self, pool: ClusterPool) -> None:
        """Seed an externally built pool into its representation's slot.

        The service engine and exploration sessions check pools out of
        their own caches; this keeps the slot-selection invariant (dense
        pools in ``_dense_pool``, int pools in ``_pool``) in one place
        so :meth:`pool_for` finds the adopted pool instead of building a
        duplicate.
        """
        if pool.kernel == DENSE_KERNEL:
            self._dense_pool = pool
        else:
            self._pool = pool

    def solve(self, algorithm: AlgorithmName = "hybrid", **kwargs) -> Solution:
        """Run the chosen algorithm; see :func:`repro.core.registry.algorithm_names`."""
        info = validate_algorithm_kwargs(algorithm, kwargs)
        return info.runner(self, **kwargs)


@register_algorithm(
    "bottom-up",
    cost="greedy",
    complexity="O(L^2) merge candidates per step",
    kwargs=("use_delta", "kernel", "argmax"),
    summary="Algorithm 1: greedy pairwise merging from the top-L singletons",
)
def _run_bottom_up(instance: ProblemInstance, **kwargs) -> Solution:
    from repro.core.bottom_up import bottom_up

    return bottom_up(
        instance.pool_for(kwargs.get("kernel")),
        instance.k,
        instance.D,
        **kwargs,
    )


@register_algorithm(
    "bottom-up-level",
    cost="greedy",
    complexity="O(L^2) after seeding at semilattice level D-1",
    kwargs=("use_delta", "kernel", "argmax"),
    summary="Section 5.1 variant (i): seed at level D-1 ancestors",
)
def _run_bottom_up_level(instance: ProblemInstance, **kwargs) -> Solution:
    from repro.core.bottom_up import bottom_up_level_start

    return bottom_up_level_start(
        instance.pool_for(kwargs.get("kernel")),
        instance.k,
        instance.D,
        **kwargs,
    )


@register_algorithm(
    "bottom-up-pairwise",
    cost="greedy",
    complexity="O(L^2) with pairwise-LCA merge scoring",
    kwargs=("kernel",),
    summary="Section 5.1 variant (ii): merge the pair with the best LCA avg",
)
def _run_bottom_up_pairwise(instance: ProblemInstance, **kwargs) -> Solution:
    from repro.core.bottom_up import bottom_up_pairwise_avg

    return bottom_up_pairwise_avg(
        instance.pool_for(kwargs.get("kernel")),
        instance.k,
        instance.D,
        **kwargs,
    )


@register_algorithm(
    "fixed-order",
    cost="greedy",
    complexity="O(L * k) incoming-element processing",
    # No "argmax": plain Fixed-Order never runs the group argmax (only
    # its engine continuations — hybrid, precompute — do); advertising it
    # would let ablation runs believe they compared two modes.
    kwargs=("use_delta", "size_budget", "kernel"),
    summary="Algorithm 3: stream the top-L in value order into <= k clusters",
)
def _run_fixed_order(instance: ProblemInstance, **kwargs) -> Solution:
    from repro.core.fixed_order import fixed_order

    return fixed_order(
        instance.pool_for(kwargs.get("kernel")),
        instance.k,
        instance.D,
        **kwargs,
    )


@register_algorithm(
    "random-fixed-order",
    cost="heuristic",
    complexity="O(L * k), randomized prefix",
    kwargs=("seed", "kernel"),
    summary="Section 5.2: process k random top-L elements before the rest",
)
def _run_random_fixed_order(instance: ProblemInstance, **kwargs) -> Solution:
    from repro.core.fixed_order import random_fixed_order

    return random_fixed_order(
        instance.pool_for(kwargs.get("kernel")),
        instance.k,
        instance.D,
        **kwargs,
    )


@register_algorithm(
    "kmeans-fixed-order",
    cost="heuristic",
    complexity="O(L * k) plus a k-modes clustering pass",
    kwargs=("seed", "max_iterations", "kernel"),
    summary="Section 5.2: seed Fixed-Order with k-modes group patterns",
)
def _run_kmeans_fixed_order(instance: ProblemInstance, **kwargs) -> Solution:
    from repro.core.fixed_order import kmeans_fixed_order

    return kmeans_fixed_order(
        instance.pool_for(kwargs.get("kernel")),
        instance.k,
        instance.D,
        **kwargs,
    )


@register_algorithm(
    "hybrid",
    cost="greedy",
    complexity="Fixed-Order with budget c*k, then Bottom-Up",
    kwargs=("pool_factor", "use_delta", "kernel", "argmax"),
    summary="Algorithm 4: the paper's recommended two-phase algorithm",
)
def _run_hybrid(instance: ProblemInstance, **kwargs) -> Solution:
    from repro.core.hybrid import hybrid

    return hybrid(
        instance.pool_for(kwargs.get("kernel")),
        instance.k,
        instance.D,
        **kwargs,
    )


@register_algorithm(
    "brute-force",
    cost="exact",
    complexity="exponential branch-and-bound over candidate clusters",
    kwargs=("kernel",),
    summary="Section 5 baseline: exact optimum by exhaustive search",
)
def _run_brute_force(instance: ProblemInstance, **kwargs) -> Solution:
    from repro.core.brute_force import brute_force

    return brute_force(
        instance.pool_for(kwargs.get("kernel")),
        instance.k,
        instance.D,
        **kwargs,
    )


@register_algorithm(
    "lower-bound",
    cost="bound",
    complexity="O(L): the all-covering root cluster",
    summary="Trivial feasible solution; lower-bounds every objective",
)
def _run_lower_bound(instance: ProblemInstance, **kwargs) -> Solution:
    from repro.core.brute_force import lower_bound

    return lower_bound(instance.pool, **kwargs)


#: Deprecated name -> runner mapping; a live read-only view of the registry.
#: Use :mod:`repro.core.registry` (or :class:`repro.service.Engine`) instead.
ALGORITHMS = AlgorithmsView()


def summarize(
    answers: AnswerSet,
    k: int | None = None,
    L: int | None = None,
    D: int = 0,
    algorithm: AlgorithmName = "hybrid",
    mapping: MappingStrategy = "eager",
    **kwargs,
) -> Solution:
    """Summarize an answer set with at most k clusters covering the top-L,
    pairwise distance >= D — the paper's core operation in one call.

    .. deprecated:: 1.1
        ``summarize`` runs with no shared state: every call rebuilds the
        cluster pool.  Go through :meth:`repro.service.Engine.submit` (or
        :class:`~repro.interactive.session.ExplorationSession`) to share
        initialization across requests.

    >>> import warnings
    >>> from repro.core.answers import AnswerSet
    >>> answers = AnswerSet.from_rows(
    ...     [("a", "x"), ("a", "y"), ("b", "x")], [3.0, 2.0, 1.0])
    >>> with warnings.catch_warnings():
    ...     warnings.simplefilter("ignore", DeprecationWarning)
    ...     solution = summarize(answers, k=1, L=2, D=0)
    >>> solution.size
    1
    """
    warnings.warn(
        "repro.summarize(answers, ...) is deprecated; replace it with\n"
        "    engine = repro.Engine(); engine.register_dataset('ds', answers)\n"
        "    engine.submit(repro.SummaryRequest(dataset='ds', k=..., L=..., "
        "D=...))\n"
        "so pool initialization is cached and shared across requests; see "
        "docs/ARCHITECTURE.md#service-layer and docs/WIRE_PROTOCOL.md",
        DeprecationWarning,
        stacklevel=2,
    )
    instance = ProblemInstance(answers, k=k, L=L, D=D, mapping=mapping)
    return instance.solve(algorithm, **kwargs)
