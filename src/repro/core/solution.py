"""Solutions: sets of clusters, the Max-Avg objective, feasibility checking.

Definition 4.1 of the paper: a subset O of clusters is *feasible* for
``(k, L, D)`` iff (1) ``|O| <= k``; (2) O covers the top-L elements; (3) any
two clusters of O are at distance >= D; (4) no cluster of O covers another
(antichain / incomparability).  The objective **Max-Avg** is the average
value of the union of elements covered by O — each element counts once, so
overlapping clusters gain nothing by double-covering high values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core.answers import AnswerSet
from repro.core.cluster import Cluster, distance, strictly_covers


@dataclass(frozen=True)
class Solution:
    """An (immutable) output of the summarization algorithms.

    ``clusters`` are sorted by descending average value (display order used
    throughout the paper's figures); ``covered`` is the union of the
    clusters' covered element indices; ``value_sum`` is the sum of values of
    ``covered`` so that ``avg`` — the Max-Avg objective — is O(1).

    ``stats`` optionally carries run counters from the producing
    :class:`~repro.core.merge.MergeEngine` (e.g. how many LCA groups the
    greedy argmax evaluated vs. how many a full scan would have); it is
    excluded from equality so solutions from different argmax modes still
    compare equal when their clusters agree.
    """

    clusters: tuple[Cluster, ...]
    covered: frozenset[int]
    value_sum: float
    stats: Mapping[str, float] | None = field(
        default=None, compare=False, repr=False
    )

    @property
    def size(self) -> int:
        """Number of clusters, |O|."""
        return len(self.clusters)

    @property
    def avg(self) -> float:
        """The Max-Avg objective value, avg(O)."""
        if not self.covered:
            raise ValueError("avg of a solution covering no elements")
        return self.value_sum / len(self.covered)

    @property
    def redundant_count(self) -> int:
        """Number of covered elements minus those needed per cluster count.

        Exposed for the Min-Size alternative objective discussed in
        footnote 5 of the paper (minimizing redundant elements)."""
        return len(self.covered)

    def patterns(self) -> list[tuple[int, ...]]:
        return [c.pattern for c in self.clusters]

    @staticmethod
    def from_clusters(clusters: Iterable[Cluster], answers: AnswerSet) -> "Solution":
        """Assemble a Solution, recomputing the covered union and its sum."""
        ordered = sorted(clusters, key=lambda c: (-c.avg, c.pattern))
        covered: set[int] = set()
        for cluster in ordered:
            covered.update(cluster.covered)
        value_sum = sum(answers.values[i] for i in covered)
        return Solution(tuple(ordered), frozenset(covered), value_sum)

    def describe(self, answers: AnswerSet) -> str:
        """Two-layer rendering in the style of Figure 1b/1c."""
        lines = []
        for cluster in self.clusters:
            decoded = (
                answers.decode(cluster.pattern)
                if answers.codec is not None
                else cluster.pattern
            )
            rendered = ", ".join(str(v) for v in decoded)
            lines.append("(%s)  avg=%.4f  size=%d" % (rendered, cluster.avg, cluster.size))
        return "\n".join(lines)


def floor_at_root(solution: Solution, pool) -> Solution:
    """Never return a summary worse than the trivial all-star solution.

    The root cluster (all ``*``) is feasible for every (k >= 1, L, D) —
    one cluster, full coverage, no pairs — and its average value
    lower-bounds every objective.  A greedy run that is *forced* into
    merges (small k, large D) can end on a non-root cluster whose
    average is below that floor; this guard swaps in the root solution
    in that case, preserving the run's ``stats``.  Hypothesis found the
    original violation: with k=1 the last merge can land on a pattern
    covering a low-valued slice instead of generalizing all the way up.
    """
    root = pool.root()
    if not root.covered or not solution.covered:
        return solution
    if solution.avg >= root.avg:
        return solution
    return Solution(
        (root,), root.covered, root.value_sum, stats=solution.stats
    )


def redundant_elements(solution: Solution, answers: AnswerSet, L: int) -> set[int]:
    """Covered elements outside the top-L (Section 4.1's 'redundant' picks)."""
    top = set(answers.top(L))
    return set(solution.covered) - top


def check_feasibility(
    solution: Solution,
    answers: AnswerSet,
    k: int,
    L: int,
    D: int,
) -> list[str]:
    """Return the list of violated constraints (empty iff feasible).

    Checks the four conditions of Definition 4.1 and reports each violation
    with enough detail to debug an algorithm that produced it.
    """
    violations: list[str] = []
    if solution.size > k:
        violations.append(
            "size: %d clusters > k=%d" % (solution.size, k)
        )
    uncovered = [i for i in answers.top(L) if i not in solution.covered]
    if uncovered:
        violations.append(
            "coverage: top-L ranks not covered (0-based): %r" % (uncovered,)
        )
    clusters: Sequence[Cluster] = solution.clusters
    for i in range(len(clusters)):
        for j in range(i + 1, len(clusters)):
            d = distance(clusters[i].pattern, clusters[j].pattern)
            if d < D:
                violations.append(
                    "distance: d(%s, %s) = %d < D=%d"
                    % (clusters[i], clusters[j], d, D)
                )
    for i in range(len(clusters)):
        for j in range(len(clusters)):
            if i != j and strictly_covers(
                clusters[i].pattern, clusters[j].pattern
            ):
                violations.append(
                    "incomparability: %s covers %s"
                    % (clusters[i], clusters[j])
                )
    return violations


def is_feasible(
    solution: Solution, answers: AnswerSet, k: int, L: int, D: int
) -> bool:
    """True iff *solution* satisfies Definition 4.1 for (k, L, D)."""
    return not check_feasibility(solution, answers, k, L, D)
