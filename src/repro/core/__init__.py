"""Core of the reproduction: the paper's summarization framework.

Exports the pattern algebra (Section 3), the problem/solution model
(Section 4), and the greedy + exact algorithms (Section 5).
"""

from repro.core.answers import AnswerSet
from repro.core.cluster import (
    Cluster,
    Pattern,
    covers,
    distance,
    format_pattern,
    generalizations,
    lca,
    lca_many,
    level,
)
from repro.core.registry import (
    AlgorithmInfo,
    algorithm_infos,
    algorithm_names,
    get_algorithm,
    register_algorithm,
    unregister_algorithm,
    validate_algorithm_kwargs,
)
from repro.core.semilattice import ClusterPool
from repro.core.solution import Solution, check_feasibility, is_feasible
from repro.core.problem import ProblemInstance, summarize, ALGORITHMS
from repro.core.bottom_up import (
    bottom_up,
    bottom_up_level_start,
    bottom_up_pairwise_avg,
)
from repro.core.fixed_order import (
    fixed_order,
    kmeans_fixed_order,
    random_fixed_order,
)
from repro.core.hybrid import hybrid
from repro.core.brute_force import brute_force, lower_bound
from repro.core.merge import MergeEngine
from repro.core.objectives import max_avg, min_size, min_size_greedy

__all__ = [
    "AnswerSet",
    "Cluster",
    "Pattern",
    "ClusterPool",
    "Solution",
    "ProblemInstance",
    "MergeEngine",
    "ALGORITHMS",
    "AlgorithmInfo",
    "algorithm_infos",
    "algorithm_names",
    "get_algorithm",
    "register_algorithm",
    "unregister_algorithm",
    "validate_algorithm_kwargs",
    "covers",
    "distance",
    "lca",
    "lca_many",
    "level",
    "generalizations",
    "format_pattern",
    "check_feasibility",
    "is_feasible",
    "summarize",
    "bottom_up",
    "bottom_up_level_start",
    "bottom_up_pairwise_avg",
    "fixed_order",
    "random_fixed_order",
    "kmeans_fixed_order",
    "hybrid",
    "brute_force",
    "lower_bound",
    "max_avg",
    "min_size",
    "min_size_greedy",
]
