"""Cluster (pattern) algebra: coverage, distance, LCA, semilattice order.

A *cluster* (Section 3) is a pattern over the ``m`` grouping attributes where
each position holds either a concrete value code or the don't-care value
``*`` (:data:`~repro.common.interning.STAR`).  A cluster *covers* another
cluster (or an element, which is just a star-free cluster) if it agrees on
every non-star position.  Coverage induces the semilattice of Section 4.2;
the join (least upper bound) of two patterns is their least common ancestor
(LCA), obtained by starring out every attribute where they disagree.

The distance between two clusters (Definition 3.1) is the number of
attributes where they do **not** share a concrete value — i.e. positions
where either side is ``*`` or the values differ.  This distance is a metric
on patterns and is monotone under generalization (Proposition 4.2), which is
what lets the greedy merges of Section 5 never re-violate the distance
constraint.

All functions here operate on plain ``tuple[int, ...]`` patterns for speed;
:class:`Cluster` is the value-carrying wrapper used in solutions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.common.interning import STAR
from repro.core.bitset import bitset_of

Pattern = tuple[int, ...]


def is_element(pattern: Pattern) -> bool:
    """True if *pattern* has no stars (i.e., it is a singleton cluster)."""
    return STAR not in pattern


def level(pattern: Pattern) -> int:
    """Semilattice level: the number of ``*`` positions (Section 4.2)."""
    return sum(1 for v in pattern if v == STAR)


def covers(ancestor: Pattern, descendant: Pattern) -> bool:
    """True if *ancestor* covers *descendant* (``descendant <= ancestor``).

    Every non-star position of the ancestor must match the descendant.
    Reflexive: every pattern covers itself.
    """
    for a, d in zip(ancestor, descendant):
        if a != STAR and a != d:
            return False
    return True


def strictly_covers(ancestor: Pattern, descendant: Pattern) -> bool:
    """True if *ancestor* covers *descendant* and they differ."""
    return ancestor != descendant and covers(ancestor, descendant)


def comparable(p1: Pattern, p2: Pattern) -> bool:
    """True if one of the two patterns covers the other."""
    return covers(p1, p2) or covers(p2, p1)


def distance(p1: Pattern, p2: Pattern) -> int:
    """Cluster distance of Definition 3.1.

    The number of attributes where the two patterns do not agree on a
    concrete domain value: positions where either side is ``*`` or the two
    values differ.  For two star-free patterns this degenerates to Hamming
    distance.  Intuitively it is the maximum distance between any pair of
    elements the two clusters may contain.
    """
    d = 0
    for a, b in zip(p1, p2):
        if a == STAR or b == STAR or a != b:
            d += 1
    return d


def lca(p1: Pattern, p2: Pattern) -> Pattern:
    """Least common ancestor: star out every attribute where p1, p2 differ.

    This is the join of the two patterns in the semilattice (the unique
    minimal pattern covering both).
    """
    return tuple(a if a == b else STAR for a, b in zip(p1, p2))


def lca_and_distance(p1: Pattern, p2: Pattern) -> tuple[Pattern, int]:
    """:func:`lca` and :func:`distance` in one traversal.

    The merge engine's pair table needs both for every registered pair;
    fusing the loops halves that (hot) bookkeeping cost.
    """
    joined = []
    d = 0
    for a, b in zip(p1, p2):
        if a == b and a != STAR:
            joined.append(a)
        else:
            joined.append(STAR)
            d += 1
    return tuple(joined), d


def lca_many(patterns: Iterable[Pattern]) -> Pattern:
    """LCA of a non-empty collection of patterns (associative fold)."""
    iterator = iter(patterns)
    try:
        acc = next(iterator)
    except StopIteration:
        raise ValueError("lca_many() of an empty collection") from None
    for pattern in iterator:
        acc = lca(acc, pattern)
    return acc


def generalizations(pattern: Pattern) -> list[Pattern]:
    """All ``2^s`` patterns obtained by starring subsets of the ``s``
    non-star positions of *pattern* (including *pattern* itself and the
    all-star root).

    For an element tuple this enumerates exactly the clusters that cover it,
    which is the basis of the paper's cluster-generation optimization
    (Section 6.3): generating the pool from the top-L tuples guarantees
    every pool cluster covers at least one top-L tuple.
    """
    positions = [i for i, v in enumerate(pattern) if v != STAR]
    results: list[Pattern] = [pattern]
    for pos in positions:
        starred = []
        for existing in results:
            as_list = list(existing)
            as_list[pos] = STAR
            starred.append(tuple(as_list))
        results.extend(starred)
    return results


def parents(pattern: Pattern) -> list[Pattern]:
    """Immediate ancestors: star out exactly one non-star position."""
    result = []
    for i, v in enumerate(pattern):
        if v != STAR:
            as_list = list(pattern)
            as_list[i] = STAR
            result.append(tuple(as_list))
    return result


def ancestors_at_level(pattern: Pattern, target_level: int) -> list[Pattern]:
    """All ancestors of *pattern* with exactly *target_level* stars.

    Used by the level-(D-1) Bottom-Up variant (Section 5.1), which seeds the
    solution with ancestors of the top-L elements that already satisfy the
    distance constraint.
    """
    own = level(pattern)
    if target_level < own:
        return []
    if target_level == own:
        return [pattern]
    return [
        general
        for general in generalizations(pattern)
        if level(general) == target_level
    ]


def format_pattern(pattern: Pattern, values: Sequence[object] | None = None) -> str:
    """Human-readable rendering, e.g. ``(1980, *, M, *)``."""
    if values is None:
        rendered = ["*" if v == STAR else str(v) for v in pattern]
    else:
        rendered = [str(v) for v in values]
    return "(%s)" % ", ".join(rendered)


@dataclass(frozen=True, order=True)
class Cluster:
    """A cluster together with the elements of S it covers.

    Ordering is by pattern (lexicographic), giving all greedy algorithms a
    deterministic tie-break.  ``covered`` holds element indices into the
    owning :class:`~repro.core.answers.AnswerSet`; ``value_sum`` caches the
    sum of their values so ``avg`` is O(1).
    """

    pattern: Pattern
    covered: frozenset[int] = field(compare=False)
    value_sum: float = field(compare=False)

    @property
    def mask(self) -> int:
        """``covered`` as an int bitmask (bit i set iff element i covered).

        Computed on first access and cached on the instance;
        :meth:`~repro.core.semilattice.ClusterPool.cluster` pre-seeds it
        from the pool's mask table so the bitset kernel never recomputes.
        """
        cached = self.__dict__.get("_mask")
        if cached is None:
            cached = bitset_of(self.covered)
            object.__setattr__(self, "_mask", cached)
        return cached

    @property
    def size(self) -> int:
        """Number of covered elements, |cov(C)|."""
        return len(self.covered)

    @property
    def avg(self) -> float:
        """Average value of covered elements, avg(C) (Section 4.1)."""
        if not self.covered:
            raise ValueError("avg of a cluster covering no elements")
        return self.value_sum / len(self.covered)

    @property
    def level(self) -> int:
        return level(self.pattern)

    def covers_element(self, element: Pattern) -> bool:
        return covers(self.pattern, element)

    def __str__(self) -> str:
        return format_pattern(self.pattern)
