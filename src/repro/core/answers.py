"""The answer set S: output of an aggregate query, ranked by value.

The summarization framework (Section 3 of the paper) operates on the result
``S`` of a query of the form::

    SELECT A_groupby, aggr AS val FROM R GROUP BY A_groupby ORDER BY val DESC

Each tuple of ``S`` is an *original element*: a tuple over the ``m`` grouping
attributes plus a real-valued score ``val``.  :class:`AnswerSet` stores the
elements encoded as integer-code tuples (see :mod:`repro.common.interning`),
sorted by descending value, which is the representation every algorithm in
:mod:`repro.core` consumes.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.common.errors import InvalidParameterError, SchemaError
from repro.common.interning import AttributeCodec
from repro.core.bitset import mask_value_sum


class AnswerSet:
    """A ranked aggregate query answer set.

    Parameters
    ----------
    elements:
        Encoded element tuples (``m`` int codes each), one per answer tuple.
    values:
        The aggregate value of each element (same order as *elements*).
    codec:
        The :class:`AttributeCodec` used to encode elements; optional but
        required to decode patterns back to raw attribute values.

    Elements are re-sorted by descending value on construction (stable, with
    the element tuple as tie-break so the ranking is deterministic).
    """

    def __init__(
        self,
        elements: Sequence[tuple[int, ...]],
        values: Sequence[float],
        codec: AttributeCodec | None = None,
    ) -> None:
        if len(elements) != len(values):
            raise SchemaError(
                "got %d elements but %d values" % (len(elements), len(values))
            )
        if not elements:
            raise SchemaError("an AnswerSet needs at least one element")
        arity = len(elements[0])
        for element in elements:
            if len(element) != arity:
                raise SchemaError("ragged element tuples in AnswerSet")
        if codec is not None and codec.arity != arity:
            raise SchemaError(
                "codec arity %d != element arity %d" % (codec.arity, arity)
            )
        if len(set(elements)) != len(elements):
            raise SchemaError(
                "duplicate elements in AnswerSet; group-by output tuples "
                "must be distinct"
            )
        order = sorted(
            range(len(elements)), key=lambda i: (-values[i], elements[i])
        )
        self.elements: list[tuple[int, ...]] = [elements[i] for i in order]
        self.values: list[float] = [float(values[i]) for i in order]
        self.codec = codec
        self._prefix_sums: list[float] | None = None
        self._avg_all: float | None = None
        self._min_value: float | None = None
        self._value_table = None

    # -- basic accessors ---------------------------------------------------

    @property
    def n(self) -> int:
        """Number of original elements, |S|."""
        return len(self.elements)

    @property
    def m(self) -> int:
        """Number of grouping attributes."""
        return len(self.elements[0])

    def value_of(self, index: int) -> float:
        """Value of the element at rank *index* (0-based)."""
        return self.values[index]

    @property
    def min_value(self) -> float:
        """The smallest element value (= ``values[-1]``; rank order).

        Cached; the merge engine consults it to decide whether the lazy
        upper-bound heap argmax is sound — marginal value sums are only
        monotone non-increasing under merges when no value is negative
        (see :mod:`repro.core.merge`).
        """
        if self._min_value is None:
            # Elements are sorted by descending value, so the minimum is
            # the last entry; keep the explicit attribute for clarity.
            self._min_value = self.values[-1]
        return self._min_value

    def top(self, L: int) -> list[int]:
        """Indices of the top-L elements (0..L-1 after the sort)."""
        if not 0 <= L <= self.n:
            raise InvalidParameterError(
                "L=%d out of range [0, %d]" % (L, self.n)
            )
        return list(range(L))

    @property
    def value_prefix_sums(self) -> list[float]:
        """``prefix[i] = sum(values[:i])`` (length n+1), built once.

        Because elements are stored in rank order, the value sum of any
        top-L prefix (or any contiguous rank range) is two lookups.
        """
        prefix = self._prefix_sums
        if prefix is None:
            prefix = [0.0] * (self.n + 1)
            total = 0.0
            for i, value in enumerate(self.values):
                total += value
                prefix[i + 1] = total
            self._prefix_sums = prefix
        return prefix

    def value_sum_range(self, start: int, stop: int) -> float:
        """Sum of values over the contiguous rank range [start, stop)."""
        prefix = self.value_prefix_sums
        return prefix[stop] - prefix[start]

    def avg_all(self) -> float:
        """Average value over all of S (value of the trivial solution)."""
        if self._avg_all is None:
            self._avg_all = self.value_prefix_sums[self.n] / self.n
        return self._avg_all

    def avg_of(self, indices: Iterable[int]) -> float:
        """Average value over a set of element indices.

        Contiguous ascending runs (e.g. ``top(L)``) are answered from the
        prefix sums; arbitrary index sets fall back to a direct sum.
        """
        indices = list(indices)
        if not indices:
            raise InvalidParameterError("avg_of() on an empty index set")
        first, last = indices[0], indices[-1]
        if last - first + 1 == len(indices) and all(
            indices[i + 1] - indices[i] == 1
            for i in range(len(indices) - 1)
        ):
            return self.value_sum_range(first, last + 1) / len(indices)
        return sum(self.values[i] for i in indices) / len(indices)

    # -- mask kernel support -------------------------------------------------

    @property
    def value_table(self):
        """The values as a contiguous ``array('d')`` row (dense kernel).

        Built once on first dense-kernel access; the numpy backend views
        the same buffer zero-copy.  See :class:`repro.core.dense.ValueTable`.
        """
        table = self._value_table
        if table is None:
            from repro.core.dense import ValueTable

            table = ValueTable(self.values)
            self._value_table = table
        return table

    def mask_value_sum(self, mask) -> float:
        """Sum of values over the set bits of *mask*, in ascending order.

        *mask* is either an int bitmask (:mod:`repro.core.bitset`) or a
        packed :class:`~repro.core.dense.BitBlocks` mask (the dense
        kernel); both sum identically (same floats) for the same bits.
        """
        if isinstance(mask, int):
            return mask_value_sum(self.values, mask)
        return mask.value_sum(self.value_table)

    def decode(self, pattern: Sequence[int]) -> tuple[Any, ...]:
        """Decode an int-code pattern back to raw attribute values."""
        if self.codec is None:
            raise SchemaError("AnswerSet has no codec; cannot decode")
        return self.codec.decode(pattern)

    # -- constructors --------------------------------------------------------

    def extended(
        self,
        rows: Iterable[Sequence[Any]],
        values: Sequence[float],
    ) -> tuple["AnswerSet", list[int]]:
        """A new AnswerSet with *rows* appended — ``(bigger, delta)``.

        *rows* are raw attribute tuples when the set has a codec (they are
        interned through it — interning is append-only, so every existing
        code keeps its meaning and this set is untouched) or already-encoded
        int tuples otherwise.  The returned *delta* lists the rank positions
        the appended elements occupy in the new set, ascending: the
        constructor re-sorts by ``(-value, element)``, so an appended row
        can land anywhere in the ranking, and every existing element's rank
        shifts up by the number of new rows inserted before it.  *delta* is
        exactly what mask-splice maintenance needs
        (:meth:`repro.core.semilattice.ClusterPool.extended`).

        Duplicate elements — within *rows* or against the existing set —
        are rejected like everywhere else (group-by outputs are distinct);
        an update stream that re-aggregates a group must replace the
        dataset instead of appending.
        """
        rows = [tuple(row) for row in rows]
        if len(rows) != len(values):
            raise SchemaError(
                "got %d rows but %d values" % (len(rows), len(values))
            )
        if not rows:
            raise SchemaError("extended() needs at least one row")
        if self.codec is not None:
            encoded = self.codec.encode_many(rows)
        else:
            encoded = rows
        bigger = AnswerSet(
            self.elements + encoded,
            self.values + [float(value) for value in values],
            self.codec,
        )
        fresh = set(encoded)
        delta = [
            index
            for index, element in enumerate(bigger.elements)
            if element in fresh
        ]
        return bigger, delta

    @classmethod
    def from_rows(
        cls,
        rows: Iterable[Sequence[Any]],
        values: Sequence[float],
        attributes: Sequence[str] | None = None,
    ) -> "AnswerSet":
        """Build an AnswerSet from raw (un-encoded) rows.

        *attributes* names the grouping columns; if omitted, positional names
        ``A1..Am`` are generated.
        """
        rows = [tuple(row) for row in rows]
        if not rows:
            raise SchemaError("from_rows() needs at least one row")
        if attributes is None:
            attributes = ["A%d" % (i + 1) for i in range(len(rows[0]))]
        codec = AttributeCodec(attributes)
        encoded = codec.encode_many(rows)
        return cls(encoded, values, codec)

    def __repr__(self) -> str:
        return "AnswerSet(n=%d, m=%d)" % (self.n, self.m)
