"""Exact brute-force search and the trivial lower bound (Section 7.1).

The brute-force algorithm explores all feasible cluster subsets and returns
the global Max-Avg optimum.  Even for tiny parameters this is expensive
(the paper reports > 2.5 hours at k=4, L=5, D=3 on their prototype), so the
search below adds sound pruning that preserves exactness:

* Branch on the highest-ranked still-uncovered top-L element; any feasible
  completion must include a cluster covering it, and only pool patterns
  cover top-L elements.
* Prune partial solutions whose optimistic bound cannot beat the incumbent:
  ``avg(A union B) <= max(avg(A), max cluster avg still addable)`` because
  the average of a union never exceeds the max of its parts' averages.
* Once coverage is complete, optional extra clusters are only explored in
  canonical (pattern-sorted) order to avoid enumerating permutations.

Like the greedy algorithms, the search runs on one of three kernels: the
default ``"bitset"`` kernel keeps the covered set as an int mask — set
difference, branching target selection, and pruning all become single
machine-word operations, and backtracking is free because masks are
immutable values — ``"dense"`` runs the identical search on packed
uint64-block masks (:mod:`repro.core.dense`; it needs a pool built with
``kernel="dense"``), and ``"python"`` keeps the original set-based search
as the ablation baseline.

The trivial **lower bound** baseline is the all-star cluster, feasible for
every (k, L, D); its value is the global average of S.
"""

from __future__ import annotations

from repro.common.errors import InvalidParameterError
from repro.core.bitset import (
    DENSE_KERNEL,
    PYTHON_KERNEL,
    iter_bits,
    resolve_kernel,
)
from repro.core.cluster import Cluster, comparable, distance
from repro.core.dense import first_n_blocks, zero_blocks
from repro.core.semilattice import ClusterPool
from repro.core.solution import Solution


class _IntSearchOps:
    """Mask helpers for the int-bitmask search (the bitset kernel)."""

    __slots__ = ()

    @staticmethod
    def first_n(count: int, nbits: int) -> int:
        return (1 << count) - 1

    @staticmethod
    def empty(nbits: int) -> int:
        return 0

    @staticmethod
    def indices(mask: int):
        return iter_bits(mask)

    @staticmethod
    def lowest_bit(mask: int) -> int:
        return (mask & -mask).bit_length() - 1


class _DenseSearchOps:
    """Mask helpers for the packed-block search (the dense kernel)."""

    __slots__ = ()

    @staticmethod
    def first_n(count: int, nbits: int):
        return first_n_blocks(count, nbits)

    @staticmethod
    def empty(nbits: int):
        return zero_blocks(nbits)

    @staticmethod
    def indices(mask):
        return mask.indices()

    @staticmethod
    def lowest_bit(mask) -> int:
        return mask.lowest_bit()


def lower_bound(pool: ClusterPool) -> Solution:
    """The trivial feasible solution: one all-star cluster covering S."""
    root = pool.root()
    return Solution(
        (root,), root.covered, root.value_sum
    )


class _Search:
    """Backtracking state for the exact search (pure-Python kernel)."""

    def __init__(self, pool: ClusterPool, k: int, L: int, D: int) -> None:
        self.pool = pool
        self.k = k
        self.L = L
        self.D = D
        self.values = pool.answers.values
        # Deterministic candidate order: by descending cluster average, then
        # pattern.  Pool clusters are exactly the patterns covering at least
        # one top-L element, which is all the search ever needs.
        self.candidates: list[Cluster] = sorted(
            (pool.cluster(p) for p in pool.patterns()),
            key=lambda c: (-c.avg, c.pattern),
        )
        self.max_candidate_avg = (
            max(c.avg for c in self.candidates) if self.candidates else 0.0
        )
        self.by_element: dict[int, list[Cluster]] = {}
        for cluster in self.candidates:
            for index in cluster.covered:
                if index < L:
                    self.by_element.setdefault(index, []).append(cluster)
        self.best_avg = float("-inf")
        self.best: list[Cluster] | None = None
        self.nodes = 0

    def compatible(self, chosen: list[Cluster], cluster: Cluster) -> bool:
        for member in chosen:
            if distance(member.pattern, cluster.pattern) < self.D:
                return False
            if comparable(member.pattern, cluster.pattern):
                return False
        return True

    def record(self, chosen: list[Cluster], covered: set[int], total: float) -> None:
        if not covered:
            return
        avg = total / len(covered)
        if avg > self.best_avg + 1e-12:
            self.best_avg = avg
            self.best = list(chosen)

    def extend(
        self,
        chosen: list[Cluster],
        covered: set[int],
        total: float,
        next_candidate: int,
    ) -> None:
        self.nodes += 1
        uncovered = [i for i in range(self.L) if i not in covered]
        if not uncovered:
            self.record(chosen, covered, total)
            if len(chosen) >= self.k:
                return
            # Optional growth: explore additions in canonical order only.
            current_avg = total / len(covered) if covered else float("-inf")
            bound = max(current_avg, self.max_candidate_avg)
            if bound <= self.best_avg + 1e-12:
                return
            for pos in range(next_candidate, len(self.candidates)):
                cluster = self.candidates[pos]
                if not self.compatible(chosen, cluster):
                    continue
                self._descend(chosen, covered, total, cluster, pos + 1)
            return
        if len(chosen) >= self.k:
            return
        current_avg = total / len(covered) if covered else self.max_candidate_avg
        if max(current_avg, self.max_candidate_avg) <= self.best_avg + 1e-12:
            return
        target = uncovered[0]
        for cluster in self.by_element.get(target, ()):
            if not self.compatible(chosen, cluster):
                continue
            self._descend(chosen, covered, total, cluster, 0)

    def _descend(
        self,
        chosen: list[Cluster],
        covered: set[int],
        total: float,
        cluster: Cluster,
        next_candidate: int,
    ) -> None:
        fresh = [i for i in cluster.covered if i not in covered]
        chosen.append(cluster)
        covered.update(fresh)
        new_total = total + sum(self.values[i] for i in fresh)
        self.extend(chosen, covered, new_total, next_candidate)
        chosen.pop()
        covered.difference_update(fresh)


class _MaskedSearch:
    """The same exact search on a mask kernel (bitset or dense).

    The covered union is an immutable mask passed down the recursion (no
    mutate-and-undo), the branch target is the lowest set bit of
    ``top_mask & ~covered``, and marginal value sums run over set bits
    only.  The mask representation — int bitmask or packed uint64 blocks
    — is abstracted behind a tiny *ops* adapter (:class:`_IntSearchOps` /
    :class:`_DenseSearchOps`); candidate order, pruning bounds, and the
    1e-12 improvement threshold are identical to :class:`_Search`, so
    every kernel finds the same optimum.
    """

    def __init__(
        self, pool: ClusterPool, k: int, L: int, D: int, ops=_IntSearchOps()
    ) -> None:
        self.pool = pool
        self.k = k
        self.D = D
        self.answers = pool.answers
        self.ops = ops
        self.top_mask = ops.first_n(L, pool.answers.n)
        self.candidates: list[Cluster] = sorted(
            (pool.cluster(p) for p in pool.patterns()),
            key=lambda c: (-c.avg, c.pattern),
        )
        self.max_candidate_avg = (
            max(c.avg for c in self.candidates) if self.candidates else 0.0
        )
        self.by_element: dict[int, list[Cluster]] = {}
        for cluster in self.candidates:
            hits = cluster.mask & self.top_mask
            for index in ops.indices(hits):
                self.by_element.setdefault(index, []).append(cluster)
        self.best_avg = float("-inf")
        self.best: list[Cluster] | None = None
        self.nodes = 0

    def compatible(self, chosen: list[Cluster], cluster: Cluster) -> bool:
        for member in chosen:
            if distance(member.pattern, cluster.pattern) < self.D:
                return False
            if comparable(member.pattern, cluster.pattern):
                return False
        return True

    def record(
        self, chosen: list[Cluster], covered, total: float
    ) -> None:
        count = covered.bit_count()
        if not count:
            return
        avg = total / count
        if avg > self.best_avg + 1e-12:
            self.best_avg = avg
            self.best = list(chosen)

    def extend(
        self,
        chosen: list[Cluster],
        covered,
        total: float,
        next_candidate: int,
    ) -> None:
        self.nodes += 1
        missing = self.top_mask & ~covered
        if not missing:
            self.record(chosen, covered, total)
            if len(chosen) >= self.k:
                return
            current_avg = (
                total / covered.bit_count() if covered else float("-inf")
            )
            if max(current_avg, self.max_candidate_avg) <= self.best_avg + 1e-12:
                return
            for pos in range(next_candidate, len(self.candidates)):
                cluster = self.candidates[pos]
                if not self.compatible(chosen, cluster):
                    continue
                self._descend(chosen, covered, total, cluster, pos + 1)
            return
        if len(chosen) >= self.k:
            return
        current_avg = (
            total / covered.bit_count() if covered else self.max_candidate_avg
        )
        if max(current_avg, self.max_candidate_avg) <= self.best_avg + 1e-12:
            return
        target = self.ops.lowest_bit(missing)
        for cluster in self.by_element.get(target, ()):
            if not self.compatible(chosen, cluster):
                continue
            self._descend(chosen, covered, total, cluster, 0)

    def _descend(
        self,
        chosen: list[Cluster],
        covered,
        total: float,
        cluster: Cluster,
        next_candidate: int,
    ) -> None:
        fresh = cluster.mask & ~covered
        chosen.append(cluster)
        self.extend(
            chosen,
            covered | fresh,
            total + self.answers.mask_value_sum(fresh),
            next_candidate,
        )
        chosen.pop()


def brute_force(
    pool: ClusterPool,
    k: int,
    D: int,
    kernel: str | None = None,
) -> Solution:
    """Exact Max-Avg optimum for (k, L=pool.L, D).

    Exponential time: intended for the small instances of Figure 5 and for
    validating the greedy heuristics in tests.  Falls back to the trivial
    lower bound when no non-trivial feasible solution is found (e.g. the
    NP-hard k < L regimes where none exists).
    """
    if k < 1:
        raise InvalidParameterError("k=%d must be >= 1" % k)
    resolved = resolve_kernel(kernel, n=pool.answers.n)
    if resolved == PYTHON_KERNEL:
        search = _Search(pool, k, pool.L, D)
        search.extend([], set(), 0.0, 0)
    else:
        dense = resolved == DENSE_KERNEL
        if dense != (pool.kernel == DENSE_KERNEL):
            raise InvalidParameterError(
                "kernel=%r needs cluster masks in its own representation, "
                "but the pool was built with kernel=%r; construct "
                "ClusterPool(..., kernel=%r)" % (resolved, pool.kernel,
                                                 resolved)
            )
        ops = _DenseSearchOps() if dense else _IntSearchOps()
        search = _MaskedSearch(pool, k, pool.L, D, ops=ops)
        search.extend([], ops.empty(pool.answers.n), 0.0, 0)
    if search.best is None:
        return lower_bound(pool)
    return Solution.from_clusters(search.best, pool.answers)
