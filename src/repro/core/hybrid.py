"""The Hybrid greedy algorithm (Section 5.3).

Hybrid runs Fixed-Order first, but with an enlarged budget of ``c * k``
clusters (``c > 1`` a small constant; the paper leaves it unspecified and we
default to 2).  Covering the top-L with the larger pool is fast and cheap;
the quadratic Bottom-Up machinery then only has to merge the ``c * k``
candidates down to k, recovering most of Bottom-Up's quality at a fraction
of its cost.  The intermediate state after the Fixed-Order phase is also the
seed for the incremental (k, D)-sweep precomputation of Section 6.2.
"""

from __future__ import annotations

from repro.common.errors import InvalidParameterError
from repro.core.bottom_up import run_distance_phase, run_size_phase
from repro.core.fixed_order import fixed_order_engine
from repro.core.merge import MergeEngine
from repro.core.semilattice import ClusterPool
from repro.core.solution import Solution, floor_at_root

#: Default candidate-pool multiplier c (Section 5.3 requires c > 1).
DEFAULT_POOL_FACTOR = 2


def hybrid(
    pool: ClusterPool,
    k: int,
    D: int,
    pool_factor: int = DEFAULT_POOL_FACTOR,
    use_delta: bool = True,
    kernel: str | None = None,
    argmax: str | None = None,
) -> Solution:
    """Run Hybrid for (k, D) on the pool's (S, L)."""
    engine = hybrid_first_phase(
        pool, k, D, pool_factor, use_delta=use_delta, kernel=kernel,
        argmax=argmax,
    )
    run_distance_phase(engine, D)
    run_size_phase(engine, k)
    return floor_at_root(engine.snapshot(), pool)


def hybrid_first_phase(
    pool: ClusterPool,
    k: int,
    D: int,
    pool_factor: int = DEFAULT_POOL_FACTOR,
    use_delta: bool = True,
    kernel: str | None = None,
    argmax: str | None = None,
) -> MergeEngine:
    """The Fixed-Order phase with budget ``c * k``; returns the live engine.

    The distance constraint is already maintained during this phase, so the
    subsequent Bottom-Up phase usually has no phase-1 work left; it is still
    run for safety (it is a no-op when no pair violates D).
    """
    if pool_factor < 1:
        raise InvalidParameterError(
            "pool_factor=%d must be >= 1" % pool_factor
        )
    budget = max(pool_factor * k, k)
    return fixed_order_engine(
        pool, budget, D, use_delta=use_delta, kernel=kernel, argmax=argmax
    )
