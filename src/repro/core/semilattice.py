"""Cluster pool: materializing the relevant part of the semilattice.

A naive implementation of the framework would instantiate every pattern in
``prod_i (D_i + {*})`` — astronomically many.  Section 6.3 of the paper
instead (1) *generates* clusters from the top-L tuples (every generalization
of a top-L tuple, and nothing else, can appear in a solution that covers the
top-L), and (2) maps tuples to clusters by having each tuple of S generate
its own matching patterns and look them up in the pool, rather than scanning
S once per cluster.  The paper reports a 100x–1000x initialization speedup
from this (Figure 8a).

:class:`ClusterPool` implements three coverage-mapping strategies:

``"eager"``
    The paper's optimized scheme: one pass over S, each element enumerates
    its ``2^m`` generalizations and appends itself to the pool entries it
    hits.  Initialization cost O(n * 2^m) dict operations.

``"naive"``
    The unoptimized baseline used for the Figure 8a ablation: for every pool
    pattern, scan all n elements and test coverage.  Cost O(|pool| * n * m).

``"lazy"``
    An extension beyond the paper: per-attribute posting lists (inverted
    index value -> element ids); a pattern's coverage is computed on first
    request by intersecting the posting lists of its non-star values, then
    cached.  Initialization is O(n * m); well suited to very large S where
    only a small fraction of the pool is ever touched.

All three produce identical :class:`~repro.core.cluster.Cluster` objects,
which property tests verify.

Independently of the strategy, ``kernel=`` selects the pool's *mask
representation*: int bitmasks (the default, shared by the bitset and
python kernels) or packed uint64 blocks when ``kernel="dense"`` — the
working representation of :mod:`repro.core.dense`, built vectorized when
numpy is available.  A :class:`~repro.core.merge.MergeEngine` requires a
pool whose representation matches its kernel.

Also independently, ``mask_only=True`` switches the pool to its
low-memory mode: per-pattern coverage is stored *only* as bitmasks
(the mask kernels' working representation) and the per-pattern
``frozenset`` index sets are never materialized at initialization —
roughly halving init memory at large L, since most pool patterns are never
touched again after mapping.  The ``coverage()``/``cluster()`` API is
unchanged: frozensets are derived from the masks on demand (and cached on
the materialized :class:`~repro.core.cluster.Cluster`), so both kernels
and all callers see identical results in either mode (property-tested).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Literal

from repro.common.budget import checkpoint as _budget_checkpoint
from repro.common.errors import InvalidParameterError
from repro.common.interning import STAR
from repro.core.answers import AnswerSet
from repro.core.bitset import (
    DENSE_KERNEL,
    bitset_of,
    resolve_kernel,
    splice_mask,
)
from repro.core.cluster import Cluster, Pattern, covers, generalizations
from repro.core.dense import MaskExtension, blocks_of, mask_indices

MappingStrategy = Literal["eager", "naive", "lazy"]

_VALID_STRATEGIES = ("eager", "naive", "lazy")

#: LRU bound on cached coverage for patterns *outside* the pool.  Pool
#: patterns are a fixed, finite set so their caches are naturally bounded,
#: but baselines/hierarchy code may probe arbitrarily many out-of-pool
#: patterns; without a bound a long-lived service Engine leaks memory.
FALLBACK_CACHE_SIZE = 256


class ClusterPool:
    """The clusters relevant to a (S, L) instance, with coverage maps.

    The pool contains exactly the generalizations of the top-L elements
    (including the singletons themselves and the all-star root).  Any LCA of
    pool patterns is itself a pool pattern, so every pattern the greedy
    algorithms or the brute-force search can reach is resolvable here.
    """

    def __init__(
        self,
        answers: AnswerSet,
        L: int,
        strategy: MappingStrategy = "eager",
        fallback_capacity: int = FALLBACK_CACHE_SIZE,
        mask_only: bool = False,
        kernel: str | None = None,
    ) -> None:
        if strategy not in _VALID_STRATEGIES:
            raise InvalidParameterError(
                "unknown mapping strategy %r; expected one of %r"
                % (strategy, _VALID_STRATEGIES)
            )
        if not 1 <= L <= answers.n:
            raise InvalidParameterError(
                "L=%d out of range [1, %d]" % (L, answers.n)
            )
        if fallback_capacity < 1:
            raise InvalidParameterError(
                "fallback_capacity must be >= 1, got %d" % fallback_capacity
            )
        self.answers = answers
        self.L = L
        self.strategy = strategy
        self.fallback_capacity = fallback_capacity
        self.mask_only = bool(mask_only)
        # The mask *representation* the pool builds: int bitmasks for the
        # bitset/python kernels (they share storage), packed uint64 blocks
        # for the dense kernel.  A merge engine requires a pool whose
        # representation matches its kernel (MergeEngine validates).
        self.kernel = resolve_kernel(kernel, n=answers.n)
        if self.kernel == DENSE_KERNEL:
            n = answers.n
            self._pack = lambda ids: blocks_of(ids, n)
        else:
            self._pack = bitset_of
        self._patterns: set[Pattern] = set()
        # Pool construction is the dominant cold-start cost at large n
        # (seconds at n=10^6); every loop below polls the request budget
        # at a coarse stride so a deadlined request abandons the build
        # within milliseconds of expiry instead of finishing it.
        for count, index in enumerate(answers.top(L)):
            if not count % 4096:
                _budget_checkpoint()
            self._patterns.update(generalizations(answers.elements[index]))
        self._coverage: dict[Pattern, frozenset[int]] = {}
        self._masks: dict[Pattern, int] = {}
        self._postings: list[dict[int, set[int]]] | None = None
        if strategy == "eager":
            self._map_eager()
        elif strategy == "naive":
            self._map_naive()
        else:
            self._build_postings()
        self._cluster_cache: dict[Pattern, Cluster] = {}
        # Out-of-pool patterns (probed by baselines and the hierarchy
        # extension) resolve by direct scan; their results live in this
        # small LRU instead of growing self._coverage without bound.
        self._fallback: OrderedDict[Pattern, Cluster] = OrderedDict()

    # -- construction of the coverage maps -----------------------------------

    def _map_eager(self) -> None:
        """One pass over S; each element registers with the pool patterns it
        generates (the Section 6.3 optimization).  Coverage is stored as an
        int bitmask (the bitset kernel's working representation) and — in
        the default mode — also as a frozenset (the stable API);
        ``mask_only`` pools skip the frozensets entirely."""
        buckets: dict[Pattern, set[int]] = {p: set() for p in self._patterns}
        for index, element in enumerate(self.answers.elements):
            if not index % 2048:
                _budget_checkpoint()
            for pattern in generalizations(element):
                bucket = buckets.get(pattern)
                if bucket is not None:
                    bucket.add(index)
        coverage = self._coverage
        masks = self._masks
        mask_only = self.mask_only
        pack = self._pack
        for count, (pattern, ids) in enumerate(buckets.items()):
            if not count % 1024:
                _budget_checkpoint()
            masks[pattern] = pack(ids)
            if not mask_only:
                coverage[pattern] = frozenset(ids)

    def _map_naive(self) -> None:
        """Per-cluster scan of all of S (the unoptimized ablation path)."""
        elements = self.answers.elements
        for pattern in self._patterns:
            _budget_checkpoint()
            ids = [
                index
                for index, element in enumerate(elements)
                if covers(pattern, element)
            ]
            self._masks[pattern] = self._pack(ids)
            if not self.mask_only:
                self._coverage[pattern] = frozenset(ids)

    def _build_postings(self) -> None:
        """Inverted index: per attribute, value code -> element id set."""
        m = self.answers.m
        postings: list[dict[int, set[int]]] = [{} for _ in range(m)]
        for index, element in enumerate(self.answers.elements):
            if not index % 4096:
                _budget_checkpoint()
            for attr, code in enumerate(element):
                postings[attr].setdefault(code, set()).add(index)
        self._postings = postings

    def _coverage_lazy(self, pattern: Pattern) -> frozenset[int]:
        assert self._postings is not None
        lists = []
        for attr, code in enumerate(pattern):
            if code == STAR:
                continue
            posting = self._postings[attr].get(code)
            if not posting:
                return frozenset()
            lists.append(posting)
        if not lists:
            return frozenset(range(self.answers.n))
        lists.sort(key=len)
        return frozenset(lists[0].intersection(*lists[1:]))

    # -- incremental maintenance ---------------------------------------------

    def extended(
        self, new_answers: AnswerSet, delta: Iterable[int]
    ) -> "ClusterPool":
        """The pool for *new_answers* built from this one, not from scratch.

        *new_answers* and *delta* come from
        :meth:`repro.core.answers.AnswerSet.extended`: the grown answer set
        and the final-coordinate rank positions its appended elements
        occupy.  The maintained pool is observably identical to
        ``ClusterPool(new_answers, L, ...)`` with the same options —
        same patterns, bit-identical masks, identical coverage sets and
        value sums (property-tested across all three kernels) — but does
        only incremental work:

        * patterns retained from this pool keep their masks, *spliced*
          into the new universe (zero bits inserted where new elements
          landed) with the newly covered elements OR'd in;
        * only the appended rows are re-mapped eagerly (each enumerates
          its ``2^m`` generalizations, exactly like one ``_map_eager``
          step restricted to the delta);
        * only patterns that are genuinely new to the pool (a new element
          entered the top-L) pay a full coverage scan — and if those
          dominate, the method falls back to a plain rebuild, which is
          then the cheaper path anyway.

        Lazy pools rebuild their posting lists (that is their entire
        initialization, O(n*m)) and splice whatever masks they had
        already materialized.
        """
        positions = sorted(delta)
        if new_answers.n != self.answers.n + len(positions):
            raise InvalidParameterError(
                "delta of %d positions cannot grow n=%d to n=%d"
                % (len(positions), self.answers.n, new_answers.n)
            )
        new_patterns: set[Pattern] = set()
        for count, index in enumerate(new_answers.top(self.L)):
            if not count % 4096:
                _budget_checkpoint()
            new_patterns.update(
                generalizations(new_answers.elements[index])
            )
        fresh = new_patterns - self._patterns
        if len(fresh) * 2 > len(new_patterns):
            # The top-L churned so hard that most of the pool needs a
            # from-scratch scan; a full rebuild is the faster maintenance.
            return ClusterPool(
                new_answers,
                self.L,
                strategy=self.strategy,
                fallback_capacity=self.fallback_capacity,
                mask_only=self.mask_only,
                kernel=self.kernel,
            )
        clone = self._clone_for(new_answers, new_patterns)
        retained = new_patterns & self._patterns
        # One eager-mapping step restricted to the appended rows: each new
        # element registers with the retained patterns it generates.
        added: dict[Pattern, list[int]] = {}
        for position in positions:
            element = new_answers.elements[position]
            for pattern in generalizations(element):
                if pattern in retained:
                    added.setdefault(pattern, []).append(position)
        if self.kernel == DENSE_KERNEL:
            extension = MaskExtension(
                positions, self.answers.n, new_answers.n
            )
            relocate = extension.extend
        else:
            def relocate(mask, added_bits):
                mask = splice_mask(mask, positions)
                for index in added_bits:
                    mask |= 1 << index
                return mask
        if self.strategy == "lazy":
            clone._build_postings()
            sources = {
                pattern: self._masks[pattern]
                for pattern in retained
                if pattern in self._masks
            }
        else:
            sources = {
                pattern: self._masks[pattern] for pattern in retained
            }
        for count, (pattern, mask) in enumerate(sources.items()):
            if not count % 1024:
                _budget_checkpoint()
            clone._masks[pattern] = relocate(
                mask, added.get(pattern, ())
            )
        # Patterns new to the pool may cover *old* elements too, so they
        # need the one full scan of the maintenance path.
        for pattern in fresh:
            _budget_checkpoint()
            ids = [
                index
                for index, element in enumerate(new_answers.elements)
                if covers(pattern, element)
            ]
            clone._masks[pattern] = clone._pack(ids)
        return clone

    def _clone_for(
        self, new_answers: AnswerSet, new_patterns: set[Pattern]
    ) -> "ClusterPool":
        """An empty shell pool over *new_answers* with this pool's options.

        Coverage frozensets, cluster objects, and the fallback LRU are
        deliberately not carried: they re-derive on demand from the masks,
        so dropping them never changes an observable answer.
        """
        clone = ClusterPool.__new__(ClusterPool)
        clone.answers = new_answers
        clone.L = self.L
        clone.strategy = self.strategy
        clone.fallback_capacity = self.fallback_capacity
        clone.mask_only = self.mask_only
        clone.kernel = self.kernel
        if clone.kernel == DENSE_KERNEL:
            n = new_answers.n
            clone._pack = lambda ids: blocks_of(ids, n)
        else:
            clone._pack = bitset_of
        clone._patterns = new_patterns
        clone._coverage = {}
        clone._masks = {}
        clone._postings = None
        clone._cluster_cache = {}
        clone._fallback = OrderedDict()
        return clone

    # -- public API ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._patterns)

    def __contains__(self, pattern: Pattern) -> bool:
        return pattern in self._patterns

    def patterns(self) -> Iterable[Pattern]:
        """All pool patterns in a deterministic (sorted) order."""
        return sorted(self._patterns)

    def coverage(self, pattern: Pattern) -> frozenset[int]:
        """Element indices covered by *pattern* (resolved per strategy).

        Patterns outside the pool are still answerable (needed by baselines
        and the hierarchy extension): they fall back to a direct scan whose
        result is kept in a small LRU (:data:`FALLBACK_CACHE_SIZE`) so a
        long-lived :class:`repro.service.Engine` cannot leak through them.
        """
        cached = self._coverage.get(pattern)
        if cached is not None:
            return cached
        if pattern not in self._patterns:
            return self._fallback_cluster(pattern).covered
        mask = self._masks.get(pattern)
        if mask is None:
            # Only reachable under the lazy strategy: eager/naive prefill.
            ids = frozenset(self._coverage_lazy(pattern))
            self._masks[pattern] = self._pack(ids)
            if not self.mask_only:
                self._coverage[pattern] = ids
            return ids
        # Mask-only pools derive the frozenset view on demand; callers
        # that need it repeatedly hold on to the materialized Cluster.
        ids = frozenset(mask_indices(mask))
        if not self.mask_only:
            self._coverage[pattern] = ids
        return ids

    def mask(self, pattern: Pattern):
        """Coverage of *pattern* as a mask in the pool's representation:
        an int bitmask, or packed uint64 blocks when ``kernel="dense"``."""
        cached = self._masks.get(pattern)
        if cached is not None:
            return cached
        if pattern in self._patterns:
            self.coverage(pattern)  # fills self._masks as a side effect
            return self._masks[pattern]
        return self._fallback_cluster(pattern).mask

    def _scan_coverage(self, pattern: Pattern) -> frozenset[int]:
        """Direct O(n*m) coverage scan (out-of-pool fallback)."""
        return frozenset(
            index
            for index, element in enumerate(self.answers.elements)
            if covers(pattern, element)
        )

    def _fallback_cluster(self, pattern: Pattern) -> Cluster:
        """Materialize (and LRU-cache) a cluster for an out-of-pool pattern."""
        cached = self._fallback.get(pattern)
        if cached is not None:
            self._fallback.move_to_end(pattern)
            return cached
        covered = self._scan_coverage(pattern)
        mask = self._pack(covered)
        built = Cluster(
            pattern=pattern,
            covered=covered,
            value_sum=self.answers.mask_value_sum(mask),
        )
        object.__setattr__(built, "_mask", mask)
        self._fallback[pattern] = built
        while len(self._fallback) > self.fallback_capacity:
            self._fallback.popitem(last=False)
        return built

    def cluster(self, pattern: Pattern) -> Cluster:
        """Materialize the :class:`Cluster` for *pattern* (cached)."""
        cached = self._cluster_cache.get(pattern)
        if cached is not None:
            return cached
        if pattern not in self._patterns:
            return self._fallback_cluster(pattern)
        covered = self.coverage(pattern)
        mask = self._masks[pattern]
        built = Cluster(
            pattern=pattern,
            covered=covered,
            value_sum=self.answers.mask_value_sum(mask),
        )
        object.__setattr__(built, "_mask", mask)
        self._cluster_cache[pattern] = built
        return built

    def singleton(self, index: int) -> Cluster:
        """The singleton cluster for the element at rank *index*."""
        return self.cluster(self.answers.elements[index])

    def root(self) -> Cluster:
        """The all-star cluster covering all of S (the trivial solution)."""
        return self.cluster(tuple([STAR] * self.answers.m))

    def __repr__(self) -> str:
        return "ClusterPool(L=%d, strategy=%s, patterns=%d%s%s)" % (
            self.L,
            self.strategy,
            len(self._patterns),
            ", mask_only" if self.mask_only else "",
            ", kernel=dense" if self.kernel == DENSE_KERNEL else "",
        )
