"""Alternative objectives: Min-Size (footnote 5) next to Max-Avg.

The paper's objective is **Max-Avg** — maximize the average value of the
covered elements.  Footnote 5 mentions an alternative, **Min-Size**, that
minimizes the number of *redundant* elements (covered elements outside the
top-L), and reports it less useful for summarization because it misses
global properties covering many high-valued elements.  This module makes
that comparison reproducible:

* :func:`max_avg` / :func:`min_size` score a solution under each objective;
* :func:`min_size_greedy` is a Bottom-Up-style heuristic that merges the
  pair introducing the fewest redundant elements;
* the ablation benchmark contrasts the two on the same instances.
"""

from __future__ import annotations

from repro.common.errors import InvalidParameterError
from repro.core.bottom_up import run_distance_phase
from repro.core.cluster import Cluster, lca
from repro.core.merge import MergeEngine
from repro.core.semilattice import ClusterPool
from repro.core.solution import Solution


def max_avg(solution: Solution) -> float:
    """The paper's objective: average value of the covered union."""
    return solution.avg


def min_size(solution: Solution, L: int) -> int:
    """Footnote 5's objective (to minimize): redundant covered elements."""
    return sum(1 for index in solution.covered if index >= L)


def min_size_greedy(
    pool: ClusterPool,
    k: int,
    D: int,
) -> Solution:
    """Bottom-Up with merge selection by fewest new redundant elements.

    Identical two-phase structure to Algorithm 1; only the greedy criterion
    changes: among candidate pairs, merge the one whose LCA adds the fewest
    elements outside the top-L (ties broken by higher resulting average,
    then pattern order, keeping runs deterministic).
    """
    if k < 1:
        raise InvalidParameterError("k=%d must be >= 1" % k)
    L = pool.L
    engine = MergeEngine(
        pool, (pool.singleton(i) for i in pool.answers.top(L))
    )

    def best_by_redundancy(
        pairs: list[tuple[Cluster, Cluster]]
    ) -> tuple[Cluster, Cluster]:
        best = None
        best_key = None
        for c1, c2 in pairs:
            merged = pool.cluster(lca(c1.pattern, c2.pattern))
            redundant = sum(
                1
                for index in merged.covered
                if index >= L and not engine.is_covered(index)
            )
            new_avg, _ = engine.evaluate_pair(c1, c2)
            key = (redundant, -new_avg, merged.pattern, c1.pattern)
            if best_key is None or key < best_key:
                best_key = key
                best = (c1, c2)
        assert best is not None
        return best

    while True:
        pairs = engine.violating_pairs(D)
        if not pairs:
            break
        engine.merge(*best_by_redundancy(pairs))
    while engine.size > k:
        engine.merge(*best_by_redundancy(engine.all_pairs()))
    return engine.snapshot()
