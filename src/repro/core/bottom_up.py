"""The Bottom-Up greedy algorithm (Algorithm 1) and its two variants.

Bottom-Up starts from the L singleton clusters of the top-L elements (which
satisfy coverage and incomparability but possibly not size or distance) and
greedily merges:

* **Phase 1** repeatedly merges a pair at distance < D, chosen to maximize
  the post-merge objective, until no violating pair remains.  By the
  monotonicity of the distance function under generalization
  (Proposition 4.2) merging never *creates* violations, so this terminates.
* **Phase 2** merges best pairs (over all pairs) until at most k clusters
  remain.

Both phases preserve the three invariants of Section 5.1: coverage of the
top-L, incomparability, and a never-decreasing minimum pairwise distance.

The two variants evaluated in the paper (and found comparable-or-worse) are
also provided: seeding at semilattice level D-1 instead of singletons, and
greedy selection by the merged *cluster's own* average instead of the
solution average.

All entry points accept ``kernel`` (``"bitset"``, the default, or
``"python"``) selecting the evaluation substrate of
:class:`~repro.core.merge.MergeEngine`, and ``argmax`` (``"auto"``,
``"heap"``, ``"scan"``) selecting the per-round greedy argmax — the lazy
upper-bound heap or the exhaustive LCA-group scan.  All combinations
produce identical solutions (property-tested).
"""

from __future__ import annotations

from repro.common.errors import InvalidParameterError
from repro.core.cluster import Cluster, ancestors_at_level
from repro.core.merge import MergeEngine
from repro.core.semilattice import ClusterPool
from repro.core.solution import Solution, floor_at_root


def _validate(pool: ClusterPool, k: int, D: int) -> None:
    if k < 1:
        raise InvalidParameterError("k=%d must be >= 1" % k)
    if not 0 <= D <= pool.answers.m + 1:
        raise InvalidParameterError(
            "D=%d out of range [0, %d]" % (D, pool.answers.m + 1)
        )


def bottom_up(
    pool: ClusterPool,
    k: int,
    D: int,
    use_delta: bool = True,
    kernel: str | None = None,
    argmax: str | None = None,
) -> Solution:
    """Run Algorithm 1 on the pool's (S, L) with parameters (k, D).

    Always returns a feasible solution: in the worst case everything merges
    into the all-star root, which satisfies every constraint.
    """
    _validate(pool, k, D)
    engine = MergeEngine(
        pool,
        (pool.singleton(i) for i in pool.answers.top(pool.L)),
        use_delta=use_delta,
        kernel=kernel,
        argmax=argmax,
    )
    run_distance_phase(engine, D)
    run_size_phase(engine, k)
    return floor_at_root(engine.snapshot(), pool)


def run_distance_phase(engine: MergeEngine, D: int) -> None:
    """Phase 1: merge best violating pair until min distance >= D."""
    while True:
        pair = engine.best_violating_pair(D)
        if pair is None:
            return
        engine.merge(*pair)


def run_size_phase(engine: MergeEngine, k: int) -> None:
    """Phase 2: merge best pair (all pairs) until at most k clusters."""
    while engine.size > k:
        pair = engine.best_any_pair()
        if pair is None:
            return
        engine.merge(*pair)


def bottom_up_level_start(
    pool: ClusterPool,
    k: int,
    D: int,
    use_delta: bool = True,
    kernel: str | None = None,
    argmax: str | None = None,
) -> Solution:
    """Variant (i) of Section 5.1: seed at semilattice level D-1.

    Any two *distinct* clusters at level D-1 are automatically at distance
    >= D (their star sets alone contribute D-1, plus at least one more
    position where they differ), so the distance phase is unnecessary; only
    the size phase runs.  For each top-L element we pick its level-(D-1)
    ancestor with the highest average value.
    """
    _validate(pool, k, D)
    seed_level = max(D - 1, 0)
    if seed_level > pool.answers.m:
        raise InvalidParameterError(
            "D=%d too large: level %d exceeds m=%d"
            % (D, seed_level, pool.answers.m)
        )
    seeds: dict[tuple[int, ...], Cluster] = {}
    for index in pool.answers.top(pool.L):
        element = pool.answers.elements[index]
        candidates = [
            pool.cluster(p) for p in ancestors_at_level(element, seed_level)
        ]
        best = min(candidates, key=lambda c: (-c.avg, c.pattern))
        seeds[best.pattern] = best
    engine = MergeEngine(
        pool, seeds.values(), use_delta=use_delta, kernel=kernel,
        argmax=argmax,
    )
    # Seeding at a uniform level guarantees pairwise distance >= D and
    # incomparability, but phase 1 is still run defensively for D where the
    # level argument does not apply (e.g. D = 0 collapses to singletons).
    run_distance_phase(engine, D)
    run_size_phase(engine, k)
    return floor_at_root(engine.snapshot(), pool)


def bottom_up_pairwise_avg(
    pool: ClusterPool,
    k: int,
    D: int,
    kernel: str | None = None,
) -> Solution:
    """Variant (ii) of Section 5.1: pick the pair whose *LCA cluster* has
    maximum average value, rather than maximizing the overall solution
    average after the merge."""
    _validate(pool, k, D)
    engine = MergeEngine(
        pool,
        (pool.singleton(i) for i in pool.answers.top(pool.L)),
        kernel=kernel,
    )

    def best_by_lca_avg(
        max_distance: int | None,
    ) -> tuple[Cluster, Cluster] | None:
        best = None
        best_key = None
        for c1, c2, merged in engine.iter_pairs(max_distance):
            key = (-merged.avg, merged.pattern, c1.pattern, c2.pattern)
            if best_key is None or key < best_key:
                best_key = key
                best = (c1, c2)
        return best

    while True:
        pair = best_by_lca_avg(D)
        if pair is None:
            break
        engine.merge(*pair)
    while engine.size > k:
        pair = best_by_lca_avg(None)
        if pair is None:
            break
        engine.merge(*pair)
    return floor_at_root(engine.snapshot(), pool)
