"""Floor evaluation: turn a scored scenario report into pass/fail.

Floors are machine-independent by design — they gate correctness and
cache behavior (differential identity, error rates, hit rates, append
bit-identity), never absolute latency, so the committed
``BENCH_scenarios.json`` stays meaningful on any hardware.

Recognized floor keys (all optional; unknown keys are an error so typos
fail loudly):

``differential_identical: true``
    The concurrent run must match the single-threaded reference replay
    on every response (after normalization).
``append_identical: true``
    The in-process append check must report bit-identical pools on all
    three kernels.
``max_error_rate: float``
    ``errors.total / requests`` must not exceed this.
``min_store_hit_rate`` / ``max_store_hit_rate: float``
    Bounds on the engine's precomputed-store cache hit rate — revisit
    shapes must *hit*, cold-churn shapes must *miss*.
``min_pool_hit_rate: float``
    Lower bound on the cluster-pool cache hit rate.
``min_requests: int``
    Sanity floor on workload volume (guards against silently tiny runs).
``max_p95_overhead: float``
    Ceiling on every kind's p95 *overhead fraction* — the share of a
    traced request's wall time spent anywhere but compute (queue wait,
    dispatch, transport).  A fraction, not a latency, so it stays
    hardware-independent; see ``spans`` in the report (built by
    :func:`repro.scenarios.runner.span_rollup`).
"""

from __future__ import annotations

from typing import Any

_KNOWN_FLOORS = frozenset({
    "differential_identical",
    "append_identical",
    "max_error_rate",
    "min_store_hit_rate",
    "max_store_hit_rate",
    "min_pool_hit_rate",
    "min_requests",
    "max_p95_overhead",
})


def evaluate_floors(report: dict[str, Any]) -> list[str]:
    """Check *report* against the floors embedded in its spec.

    Returns a list of human-readable violations — empty means the
    scenario passed every floor it declared.
    """
    floors: dict[str, Any] = report.get("spec", {}).get("floors", {})
    unknown = set(floors) - _KNOWN_FLOORS
    if unknown:
        raise ValueError("unknown floor keys: %s" % sorted(unknown))
    violations: list[str] = []

    def _rate(section: str) -> float:
        return float(report["cache"].get(section, {}).get("hit_rate", 0.0))

    if floors.get("differential_identical"):
        if not report["differential"]["identical"]:
            violations.append(
                "differential: %d mismatches, %d missing of %d compared"
                % (
                    report["differential"]["mismatches"],
                    report["differential"]["missing"],
                    report["differential"]["compared"],
                )
            )
    if floors.get("append_identical"):
        check = report.get("append_check")
        if not check or not check["identical"]:
            violations.append(
                "append check not bit-identical: %r"
                % (check and check["kernels"],)
            )
    if "max_error_rate" in floors:
        rate = report["errors"]["rate"]
        if rate > floors["max_error_rate"]:
            violations.append(
                "error rate %.4f exceeds floor %.4f (by_type=%r)"
                % (rate, floors["max_error_rate"],
                   report["errors"]["by_type"])
            )
    if "min_store_hit_rate" in floors:
        if _rate("stores") < floors["min_store_hit_rate"]:
            violations.append(
                "store hit rate %.4f below floor %.4f"
                % (_rate("stores"), floors["min_store_hit_rate"])
            )
    if "max_store_hit_rate" in floors:
        if _rate("stores") > floors["max_store_hit_rate"]:
            violations.append(
                "store hit rate %.4f above ceiling %.4f"
                % (_rate("stores"), floors["max_store_hit_rate"])
            )
    if "min_pool_hit_rate" in floors:
        if _rate("pools") < floors["min_pool_hit_rate"]:
            violations.append(
                "pool hit rate %.4f below floor %.4f"
                % (_rate("pools"), floors["min_pool_hit_rate"])
            )
    if "min_requests" in floors:
        if report["requests"] < floors["min_requests"]:
            violations.append(
                "only %d requests, floor is %d"
                % (report["requests"], floors["min_requests"])
            )
    if "max_p95_overhead" in floors:
        for kind, bucket in sorted(report.get("spans", {}).items()):
            overhead = float(bucket.get("overhead_p95", 0.0))
            if overhead > floors["max_p95_overhead"]:
                violations.append(
                    "kind %r p95 overhead fraction %.4f exceeds "
                    "ceiling %.4f" % (
                        kind, overhead, floors["max_p95_overhead"]
                    )
                )
    return violations


def summarize(reports: list[dict[str, Any]]) -> dict[str, Any]:
    """Roll scenario reports into the committed benchmark document."""
    scenarios = []
    all_ok = True
    for report in reports:
        violations = evaluate_floors(report)
        all_ok = all_ok and not violations
        scenarios.append({**report, "floor_violations": violations})
    return {
        "scenarios": scenarios,
        "scenario_count": len(scenarios),
        "all_floors_hold": all_ok,
    }
