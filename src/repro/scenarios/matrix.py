"""The committed scenario matrix: what ``BENCH_scenarios.json`` runs.

Six scenarios covering all three session shapes, all three transports,
all three dataset sources, and — in ``synthetic-append`` — the live
update stream that forces incremental pool maintenance between epochs.
Floors are correctness- and cache-shaped (never latency), so the
committed report is hardware-independent; ``tests/test_docs.py``
re-checks them against the committed JSON.

``smoke_matrix()`` is the CI-sized subset: two scenarios (one revisit,
one append) at tiny n, exercising the same code paths end to end.
"""

from __future__ import annotations

from repro.scenarios.spec import AppendSpec, DatasetSpec, ScenarioSpec

#: Floors shared by every scenario: the run is only meaningful if the
#: concurrent responses match the reference replay and nothing errored.
_BASE_FLOORS = {
    "differential_identical": True,
    "max_error_rate": 0.0,
}


def full_matrix() -> list[ScenarioSpec]:
    """The six committed scenarios (full-size run)."""
    return [
        ScenarioSpec(
            name="synthetic-drill-down",
            dataset=DatasetSpec("synthetic", {"n": 400, "m": 6, "seed": 11}),
            shape="drill-down-heavy",
            clients=4, steps=8, seed=101, transport="stdio",
            floors={**_BASE_FLOORS, "min_requests": 24},
        ),
        ScenarioSpec(
            name="synthetic-revisit",
            dataset=DatasetSpec("synthetic", {"n": 256, "m": 6, "seed": 12}),
            shape="revisit-heavy",
            clients=4, steps=8, seed=102, transport="tcp",
            floors={
                **_BASE_FLOORS,
                "min_requests": 24,
                # The shared catalog revisits one store constantly.
                "min_store_hit_rate": 0.5,
                "min_pool_hit_rate": 0.5,
            },
        ),
        ScenarioSpec(
            name="synthetic-cold-churn",
            dataset=DatasetSpec("synthetic", {"n": 512, "m": 6, "seed": 13}),
            shape="cold-churn",
            clients=4, steps=8, seed=103, transport="http",
            floors={
                **_BASE_FLOORS,
                "min_requests": 24,
                # Every request churns (L, k_range): stores must miss.
                "max_store_hit_rate": 0.15,
                # Cold rebuilds dominate wall time: no kind may spend
                # 95%+ of its traced time outside compute (a generous,
                # hardware-independent ceiling — it catches a layer
                # regression, not a slow machine).
                "max_p95_overhead": 0.95,
            },
        ),
        ScenarioSpec(
            name="movielens-drill-down",
            dataset=DatasetSpec("movielens", {"m": 4, "seed": 42}),
            shape="drill-down-heavy",
            clients=3, steps=6, seed=104, transport="http",
            floors={**_BASE_FLOORS, "min_requests": 16},
        ),
        ScenarioSpec(
            name="tpcds-cold-churn",
            dataset=DatasetSpec(
                "tpcds", {"n_groups": 1500, "m": 6, "seed": 7}
            ),
            shape="cold-churn",
            clients=3, steps=6, seed=105, transport="tcp",
            floors={
                **_BASE_FLOORS,
                "min_requests": 16,
                "max_store_hit_rate": 0.15,
            },
        ),
        ScenarioSpec(
            name="synthetic-append",
            dataset=DatasetSpec("synthetic", {"n": 200, "m": 5, "seed": 14}),
            shape="revisit-heavy",
            clients=4, steps=6, seed=106, transport="tcp",
            append=AppendSpec(batches=2, rows_per_batch=12),
            floors={
                **_BASE_FLOORS,
                "min_requests": 48,
                "append_identical": True,
            },
        ),
    ]


def smoke_matrix() -> list[ScenarioSpec]:
    """CI-sized subset: same code paths, tiny datasets, two scenarios
    (one of them the append scenario)."""
    return [
        ScenarioSpec(
            name="smoke-revisit",
            dataset=DatasetSpec("synthetic", {"n": 48, "m": 4, "seed": 21}),
            shape="revisit-heavy",
            clients=2, steps=4, seed=201, transport="tcp",
            floors={
                **_BASE_FLOORS,
                "min_requests": 8,
                "min_store_hit_rate": 0.3,
            },
        ),
        ScenarioSpec(
            name="smoke-append",
            dataset=DatasetSpec("synthetic", {"n": 40, "m": 4, "seed": 22}),
            shape="revisit-heavy",
            clients=2, steps=3, seed=202, transport="tcp",
            append=AppendSpec(batches=2, rows_per_batch=5),
            floors={
                **_BASE_FLOORS,
                "min_requests": 12,
                "append_identical": True,
            },
        ),
    ]
