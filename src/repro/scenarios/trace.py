"""Trace compilation: expand a :class:`~repro.scenarios.spec.ScenarioSpec`
into the exact requests every client will send.

The compiler is pure and deterministic — same spec, same
:class:`~repro.core.answers.AnswerSet`, same trace — which is what makes
the runner's differential check meaningful: the concurrent run and the
single-threaded reference replay execute the *identical* request lists,
so any response divergence is the server's fault, not the workload's.

A trace is a list of epochs.  Each epoch holds one request list per
client; epochs after the first may be preceded by an
:class:`AppendEvent` (rows appended to the live dataset), which is how
the append scenarios force incremental pool maintenance between bursts
of traffic.

Session shapes
--------------

``drill-down-heavy``
    Each client opens with a summary, then drills through a shared
    precomputed store: explores walking k across a fixed ``k_range`` and
    D across fixed ``d_values`` (the Section 6.2 interaction pattern).
    Exercises store build + retrieval.
``revisit-heavy``
    All clients cycle a small shared catalog of requests with per-client
    offsets, so the same request recurs both across clients (coalescing)
    and across time (cache hits).
``cold-churn``
    Every request carries distinct parameters (churning L and k_range),
    so stores rarely help — the cold-path stress shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Any, Mapping

from repro.core.answers import AnswerSet
from repro.scenarios.spec import ScenarioSpec
from repro.service.api import SCHEMA_VERSION

#: d_values shared by the drill-down store (clamped to the dataset arity).
_DRILL_D_VALUES = (0, 1, 2)


def _pick_kind(rng: Random, mixture: Mapping[str, float]) -> str:
    """Weighted deterministic choice over the mixture's kinds."""
    kinds = sorted(mixture)
    total = sum(mixture[kind] for kind in kinds)
    point = rng.random() * total
    for kind in kinds:
        point -= mixture[kind]
        if point <= 0:
            return kind
    return kinds[-1]


def _client_rng(spec: ScenarioSpec, client: int, epoch: int) -> Random:
    return Random(spec.seed * 104729 + client * 499 + epoch * 31)


@dataclass(frozen=True)
class AppendEvent:
    """One append batch: raw rows + values, applied before an epoch."""

    batch: int
    rows: tuple[tuple[Any, ...], ...]
    values: tuple[float, ...]

    def payload(self, dataset: str) -> dict[str, Any]:
        """The ``append_rows`` wire request for this batch."""
        return {
            "kind": "append_rows",
            "dataset": dataset,
            "rows": [list(row) for row in self.rows],
            "values": list(self.values),
        }


@dataclass(frozen=True)
class Epoch:
    """One traffic burst: ``requests[c]`` is client *c*'s ordered list."""

    index: int
    requests: tuple[tuple[dict[str, Any], ...], ...]
    append: AppendEvent | None = None


@dataclass(frozen=True)
class Trace:
    """The fully expanded workload for one scenario."""

    spec: ScenarioSpec
    dataset: str
    epochs: tuple[Epoch, ...] = field(default_factory=tuple)

    @property
    def total_requests(self) -> int:
        return sum(
            len(client_requests)
            for epoch in self.epochs
            for client_requests in epoch.requests
        )

    def flat_requests(self) -> list[tuple[int, int, dict[str, Any]]]:
        """All requests as ``(epoch, client, payload)`` in replay order:
        epoch-major, then client, then position — the order the reference
        replay uses."""
        out: list[tuple[int, int, dict[str, Any]]] = []
        for epoch in self.epochs:
            for client, client_requests in enumerate(epoch.requests):
                for payload in client_requests:
                    out.append((epoch.index, client, payload))
        return out


# -- request builders --------------------------------------------------------


def _summary(dataset: str, k: int, L: int, D: int) -> dict[str, Any]:
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "summary", "dataset": dataset,
        "k": k, "L": L, "D": D, "algorithm": "hybrid",
    }


def _explore(
    dataset: str, k: int, L: int, D: int,
    k_range: tuple[int, int], d_values: tuple[int, ...],
) -> dict[str, Any]:
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "explore", "dataset": dataset,
        "k": k, "L": L, "D": D,
        "k_range": list(k_range), "d_values": list(d_values),
    }


def _guidance(
    dataset: str, L: int,
    k_range: tuple[int, int], d_values: tuple[int, ...],
) -> dict[str, Any]:
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "guidance", "dataset": dataset, "L": L,
        "k_range": list(k_range), "d_values": list(d_values),
    }


# -- shape generators --------------------------------------------------------


def _drill_down_requests(
    spec: ScenarioSpec, dataset: str, n: int, m: int,
    client: int, epoch: int,
) -> list[dict[str, Any]]:
    rng = _client_rng(spec, client, epoch)
    k_lo = 2
    k_hi = max(k_lo, min(8, n))
    k_range = (k_lo, k_hi)
    d_values = tuple(d for d in _DRILL_D_VALUES if d < m) or (0,)
    L = k_lo  # L <= every k in the range, so the store serves all of them
    requests = [_summary(dataset, k=k_hi, L=L, D=0)]
    k, d_index = k_lo, 0
    while len(requests) < spec.steps:
        kind = _pick_kind(rng, spec.mixture)
        if kind == "explore":
            requests.append(_explore(
                dataset, k=k, L=L, D=d_values[d_index],
                k_range=k_range, d_values=d_values,
            ))
            k += 1
            if k > k_hi:
                k = k_lo
                d_index = (d_index + 1) % len(d_values)
        elif kind == "guidance":
            requests.append(_guidance(
                dataset, L=L, k_range=k_range, d_values=d_values,
            ))
        else:
            requests.append(_summary(
                dataset,
                k=rng.randint(k_lo, k_hi),
                L=L,
                D=rng.choice(d_values),
            ))
    return requests[: spec.steps]


def _revisit_catalog(
    spec: ScenarioSpec, dataset: str, n: int, m: int
) -> list[dict[str, Any]]:
    """The small shared request catalog every client cycles through."""
    rng = Random(spec.seed * 7919)
    k_lo = 2
    k_hi = max(k_lo, min(6, n))
    k_range = (k_lo, k_hi)
    d_values = tuple(d for d in _DRILL_D_VALUES if d < m) or (0,)
    catalog: list[dict[str, Any]] = []
    for kind in ("summary", "explore", "guidance", "explore"):
        if kind == "summary":
            catalog.append(_summary(
                dataset, k=k_hi, L=k_lo, D=rng.choice(d_values)
            ))
        elif kind == "explore":
            catalog.append(_explore(
                dataset,
                k=rng.randint(k_lo, k_hi), L=k_lo,
                D=rng.choice(d_values),
                k_range=k_range, d_values=d_values,
            ))
        else:
            catalog.append(_guidance(
                dataset, L=k_lo, k_range=k_range, d_values=d_values,
            ))
    return catalog


def _revisit_requests(
    catalog: list[dict[str, Any]], spec: ScenarioSpec,
    client: int, epoch: int,
) -> list[dict[str, Any]]:
    return [
        dict(catalog[(client + epoch + position) % len(catalog)])
        for position in range(spec.steps)
    ]


def _cold_churn_requests(
    spec: ScenarioSpec, dataset: str, n: int, m: int,
    client: int, epoch: int,
) -> list[dict[str, Any]]:
    rng = _client_rng(spec, client, epoch)
    requests: list[dict[str, Any]] = []
    d_choices = tuple(d for d in _DRILL_D_VALUES if d < m) or (0,)
    for position in range(spec.steps):
        # A churn index unique per (client, epoch, position) spreads L and
        # k_range so no two requests in the scenario share a store.
        churn = (
            (epoch * spec.clients + client) * spec.steps + position
        )
        kind = _pick_kind(rng, spec.mixture)
        L = 1 + churn % max(1, min(n - 1, 64))
        k_lo = L
        k_hi = min(n, k_lo + 2 + churn % 3)
        if kind == "explore":
            requests.append(_explore(
                dataset,
                k=rng.randint(k_lo, k_hi), L=L,
                D=rng.choice(d_choices),
                k_range=(k_lo, k_hi), d_values=d_choices,
            ))
        elif kind == "guidance":
            requests.append(_guidance(
                dataset, L=L, k_range=(k_lo, k_hi), d_values=d_choices,
            ))
        else:
            requests.append(_summary(
                dataset, k=k_hi, L=L, D=rng.choice(d_choices)
            ))
    return requests


# -- append-event generation -------------------------------------------------


def _append_events(
    spec: ScenarioSpec, answers: AnswerSet
) -> list[AppendEvent]:
    """Deterministic append batches, guaranteed distinct from existing rows.

    Attribute 0 of every appended row carries a fresh token never present
    in the dataset (so the whole tuple is new — duplicate elements are a
    :class:`~repro.common.errors.SchemaError`); remaining attributes are
    sampled from the live domain so appended rows generalize into the
    same patterns real rows do.  Values are dyadic (quarters) within the
    existing value range, keeping cross-kernel float sums bit-exact.
    """
    assert spec.append is not None
    rng = Random(spec.seed * 15485863 + 17)
    low = min(answers.values)
    high = max(answers.values)
    events: list[AppendEvent] = []
    codec = answers.codec
    for batch in range(spec.append.batches):
        rows: list[tuple[Any, ...]] = []
        values: list[float] = []
        for i in range(spec.append.rows_per_batch):
            fresh = "__new_b%d_r%d" % (batch, i)
            if codec is not None and codec.arity > 1:
                rest = tuple(
                    rng.choice(codec.interner(attr).domain())
                    for attr in range(1, codec.arity)
                )
            elif codec is not None:
                rest = ()
            else:
                rest = tuple(
                    "%s_a%d" % (fresh, attr)
                    for attr in range(1, answers.m)
                )
            rows.append((fresh,) + rest)
            values.append(round(rng.uniform(low, high) * 4) / 4)
        events.append(AppendEvent(batch, tuple(rows), tuple(values)))
    return events


# -- compiler ----------------------------------------------------------------


def compile_trace(spec: ScenarioSpec, answers: AnswerSet) -> Trace:
    """Expand *spec* against *answers* into the full request trace.

    The dataset is registered under ``spec.name``; every generated
    request targets it.  ``answers`` is the epoch-0 dataset — append
    events extend it server-side, but request parameters are bounded by
    the base ``n`` so the trace stays valid in every epoch.
    """
    dataset = spec.name
    n, m = answers.n, answers.m
    appends = _append_events(spec, answers) if spec.append else []
    catalog = (
        _revisit_catalog(spec, dataset, n, m)
        if spec.shape == "revisit-heavy" else None
    )
    epochs: list[Epoch] = []
    for epoch_index in range(spec.epochs):
        per_client: list[tuple[dict[str, Any], ...]] = []
        for client in range(spec.clients):
            if spec.shape == "drill-down-heavy":
                requests = _drill_down_requests(
                    spec, dataset, n, m, client, epoch_index
                )
            elif spec.shape == "revisit-heavy":
                assert catalog is not None
                requests = _revisit_requests(
                    catalog, spec, client, epoch_index
                )
            else:
                requests = _cold_churn_requests(
                    spec, dataset, n, m, client, epoch_index
                )
            per_client.append(tuple(requests))
        epochs.append(Epoch(
            index=epoch_index,
            requests=tuple(per_client),
            append=appends[epoch_index - 1] if epoch_index > 0 else None,
        ))
    return Trace(spec=spec, dataset=dataset, epochs=tuple(epochs))
