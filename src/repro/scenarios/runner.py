"""Scenario execution: run a compiled trace against a *real* server.

The runner is the load-bearing half of the scenario harness:

1. Build the dataset and compile the trace (:mod:`repro.scenarios.trace`).
2. Execute it over the spec's transport — stdio (in-process
   :class:`~repro.service.serve.Dispatcher`), TCP
   (:class:`~repro.server.tcp.BackgroundServer` + one
   :class:`~repro.server.client.LineClient` per client thread), or HTTP
   (:class:`~repro.web.http.BackgroundWebServer` + one connection per
   client thread).  Clients run concurrently within an epoch; epochs are
   separated by barriers so append batches land *between* traffic bursts
   with every client quiesced — the live-update scenario of the paper's
   interactive setting.
3. Replay the identical trace single-threaded on a fresh engine and
   compare every response (timings zeroed, cache-hit flags dropped):
   concurrency, coalescing, and incremental append maintenance must be
   observably invisible.  Any divergence is a correctness bug, and the
   committed report says so.
4. For append scenarios, additionally prove in-process that the
   incrementally maintained :class:`~repro.core.semilattice.ClusterPool`
   is *bit-identical* (patterns, masks, coverage) to a pool rebuilt from
   scratch, on all three kernels.

The scored report (latency histograms per kind, error taxonomy, engine
cache/coalesce rates, differential verdict, append check) is plain JSON —
:mod:`repro.scenarios.report` turns it + the spec's floors into pass/fail.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any

from repro.core.answers import AnswerSet
from repro.obs import Telemetry
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.trace import AppendEvent, Trace, compile_trace
from repro.server.metrics import LatencyHistogram

#: How many differential mismatches to quote verbatim in the report.
_MAX_DIFF_EXAMPLES = 3

#: Response keys that legitimately differ between runs: wall-clock
#: timings and cache observability.  Everything else must match.
_VOLATILE_KEY_SUFFIX = "_seconds"
_VOLATILE_KEYS = frozenset({"cache_hit"})


def normalize_response(payload: Any) -> Any:
    """Strip run-dependent fields so responses compare across runs.

    Drops ``cache_hit`` (a warm cache is an implementation detail), zeroes
    every ``*_seconds`` timing (including nested ``phase_seconds`` maps),
    and recurses through containers.  Everything that survives — clusters,
    values, coverage, errors — must be identical between the concurrent
    run and the single-threaded reference replay.
    """
    if isinstance(payload, dict):
        out: dict[str, Any] = {}
        for key, value in payload.items():
            if key in _VOLATILE_KEYS:
                continue
            if key.endswith(_VOLATILE_KEY_SUFFIX):
                if isinstance(value, dict):
                    out[key] = {inner: 0.0 for inner in value}
                else:
                    out[key] = 0.0
                continue
            out[key] = normalize_response(value)
        return out
    if isinstance(payload, (list, tuple)):
        # The wire JSON-serializes tuples to lists; the in-process
        # reference replay keeps them as tuples.  Same data, one shape.
        return [normalize_response(item) for item in payload]
    return payload


class _Recorder:
    """Per-client observation sink, merged after the run (no shared
    mutable state across client threads during execution)."""

    def __init__(self, clients: int) -> None:
        self.responses: list[dict[tuple[int, int], dict[str, Any]]] = [
            {} for _ in range(clients)
        ]
        self.latencies: list[list[tuple[str, float]]] = [
            [] for _ in range(clients)
        ]
        self.failures: list[list[str]] = [[] for _ in range(clients)]

    def record(
        self, client: int, epoch: int, position: int,
        kind: str, response: dict[str, Any], seconds: float,
    ) -> None:
        self.responses[client][(epoch, position)] = response
        self.latencies[client].append((kind, seconds))

    def fail(self, client: int, message: str) -> None:
        self.failures[client].append(message)


def _apply_append_inline(engine, dataset: str, event: AppendEvent) -> None:
    result = engine.append_rows(
        dataset, [tuple(row) for row in event.rows], list(event.values)
    )
    if result["appended"] != len(event.rows):
        raise RuntimeError(
            "append batch %d only applied %d/%d rows"
            % (event.batch, result["appended"], len(event.rows))
        )


# -- transports ---------------------------------------------------------------


def _run_stdio(
    trace: Trace, engine, telemetry: Telemetry
) -> tuple[_Recorder, dict[str, Any]]:
    """Sequential in-process execution through the shared dispatcher."""
    from repro.service.serve import Dispatcher

    dispatcher = Dispatcher(engine, telemetry=telemetry)
    recorder = _Recorder(trace.spec.clients)
    for epoch in trace.epochs:
        if epoch.append is not None:
            response = dispatcher.dispatch_payload(
                epoch.append.payload(trace.dataset)
            ).response
            if response.get("kind") != "rows_appended":
                raise RuntimeError(
                    "append batch rejected: %r" % (response,)
                )
        for client, client_requests in enumerate(epoch.requests):
            for position, payload in enumerate(client_requests):
                started = time.perf_counter()
                response = dispatcher.dispatch_payload(dict(payload)).response
                elapsed = time.perf_counter() - started
                recorder.record(
                    client, epoch.index, position,
                    payload["kind"], response, elapsed,
                )
    stats = dispatcher.dispatch_payload({"kind": "stats"}).response
    return recorder, stats


def _run_client_epochs(
    trace: Trace,
    recorder: _Recorder,
    client: int,
    start_barrier: threading.Barrier,
    end_barrier: threading.Barrier,
    send,
) -> None:
    """One concurrent client: barrier in, burst, barrier out, per epoch."""
    try:
        for epoch in trace.epochs:
            start_barrier.wait(timeout=300.0)
            try:
                for position, payload in enumerate(epoch.requests[client]):
                    started = time.perf_counter()
                    response = send(dict(payload))
                    elapsed = time.perf_counter() - started
                    recorder.record(
                        client, epoch.index, position,
                        payload["kind"], response, elapsed,
                    )
            finally:
                end_barrier.wait(timeout=300.0)
    except Exception as error:  # noqa: BLE001 — reported, never swallowed
        recorder.fail(client, "%s: %s" % (type(error).__name__, error))
        # Unblock the coordinator: a broken barrier aborts the run loudly.
        start_barrier.abort()
        end_barrier.abort()


def _drive_epochs(
    trace: Trace,
    recorder: _Recorder,
    make_send,
    apply_append,
    fetch_stats,
) -> dict[str, Any]:
    """Shared concurrent driver for the TCP and HTTP transports.

    ``make_send(client)`` returns a ``send(payload) -> response`` callable
    (one connection per client thread); ``apply_append(event)`` runs an
    append batch while every client is parked at the epoch barrier;
    ``fetch_stats()`` grabs the final server-side stats payload.
    """
    spec = trace.spec
    start_barrier = threading.Barrier(spec.clients + 1)
    end_barrier = threading.Barrier(spec.clients + 1)
    threads: list[threading.Thread] = []

    def client_main(client: int) -> None:
        try:
            send = make_send(client)
        except Exception as error:  # noqa: BLE001
            recorder.fail(client, "connect: %s" % error)
            start_barrier.abort()
            end_barrier.abort()
            return
        try:
            _run_client_epochs(
                trace, recorder, client, start_barrier, end_barrier, send
            )
        finally:
            closer = getattr(send, "close", None)
            if closer is not None:
                closer()

    for client in range(spec.clients):
        thread = threading.Thread(
            target=client_main,
            args=(client,),
            name="scenario-client-%d" % client,
            daemon=True,
        )
        thread.start()
        threads.append(thread)
    try:
        for epoch in trace.epochs:
            if epoch.append is not None:
                apply_append(epoch.append)
            start_barrier.wait(timeout=300.0)
            end_barrier.wait(timeout=300.0)
    except threading.BrokenBarrierError:
        pass  # a client failed (or stalled); recorder.failures has details
    for thread in threads:
        thread.join(timeout=120.0)
    return fetch_stats()


def _run_tcp(
    trace: Trace, engine, telemetry: Telemetry
) -> tuple[_Recorder, dict[str, Any]]:
    from repro.server.client import LineClient
    from repro.server.tcp import BackgroundServer, TCPServer

    recorder = _Recorder(trace.spec.clients)
    with BackgroundServer(
        TCPServer(engine, shards=2, telemetry=telemetry)
    ) as server:
        admin = LineClient(server.host, server.port, timeout=120.0)

        def make_send(client: int):
            line = LineClient(server.host, server.port, timeout=120.0)

            def send(payload: dict[str, Any]) -> dict[str, Any]:
                return line.request(payload)

            send.close = line.close
            return send

        def apply_append(event: AppendEvent) -> None:
            response = admin.request(event.payload(trace.dataset))
            if response.get("kind") != "rows_appended":
                raise RuntimeError("append batch rejected: %r" % (response,))

        def fetch_stats() -> dict[str, Any]:
            return admin.request({"kind": "stats"})

        try:
            stats = _drive_epochs(
                trace, recorder, make_send, apply_append, fetch_stats
            )
        finally:
            admin.close()
    return recorder, stats


def _run_http(
    trace: Trace, engine, telemetry: Telemetry
) -> tuple[_Recorder, dict[str, Any]]:
    import http.client

    from repro.web.http import BackgroundWebServer, WebServer

    recorder = _Recorder(trace.spec.clients)
    server = BackgroundWebServer(
        WebServer(engine, port=0, telemetry=telemetry)
    ).start()
    try:
        def open_connection() -> http.client.HTTPConnection:
            return http.client.HTTPConnection(
                server.host, server.port, timeout=120.0
            )

        def post(
            connection: http.client.HTTPConnection, payload: dict[str, Any]
        ) -> dict[str, Any]:
            kind = payload["kind"]
            if kind in ("summary", "explore", "guidance"):
                path = "/v2/%s" % kind
            else:
                path = "/v2/admin/%s" % kind
            connection.request(
                "POST", path, body=json.dumps(payload),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            return json.loads(response.read().decode("utf-8"))

        def make_send(client: int):
            connection = open_connection()

            def send(payload: dict[str, Any]) -> dict[str, Any]:
                return post(connection, payload)

            send.close = connection.close
            return send

        def apply_append(event: AppendEvent) -> None:
            connection = open_connection()
            try:
                response = post(connection, event.payload(trace.dataset))
            finally:
                connection.close()
            if response.get("kind") != "rows_appended":
                raise RuntimeError("append batch rejected: %r" % (response,))

        def fetch_stats() -> dict[str, Any]:
            connection = open_connection()
            try:
                return post(connection, {"kind": "stats"})
            finally:
                connection.close()

        stats = _drive_epochs(
            trace, recorder, make_send, apply_append, fetch_stats
        )
    finally:
        server.stop()
    return recorder, stats


_TRANSPORT_RUNNERS = {
    "stdio": _run_stdio,
    "tcp": _run_tcp,
    "http": _run_http,
}


# -- reference replay + differential -----------------------------------------


def _reference_replay(
    trace: Trace, answers: AnswerSet
) -> dict[tuple[int, int, int], dict[str, Any]]:
    """The oracle: same trace, fresh engine, one thread, no server."""
    from repro.service.engine import Engine
    from repro.service.serve import Dispatcher

    engine = Engine()
    engine.register_dataset(trace.dataset, answers)
    dispatcher = Dispatcher(engine)
    reference: dict[tuple[int, int, int], dict[str, Any]] = {}
    for epoch in trace.epochs:
        if epoch.append is not None:
            _apply_append_inline(engine, trace.dataset, epoch.append)
        for client, client_requests in enumerate(epoch.requests):
            for position, payload in enumerate(client_requests):
                reference[(epoch.index, client, position)] = (
                    dispatcher.dispatch_payload(dict(payload)).response
                )
    return reference


def _differential(
    trace: Trace,
    recorder: _Recorder,
    reference: dict[tuple[int, int, int], dict[str, Any]],
) -> dict[str, Any]:
    compared = 0
    missing = 0
    mismatch_total = 0
    examples: list[dict[str, Any]] = []
    for (epoch, client, position), expected in sorted(reference.items()):
        got = recorder.responses[client].get((epoch, position))
        if got is None:
            missing += 1
            continue
        compared += 1
        lhs = normalize_response(got)
        rhs = normalize_response(expected)
        if lhs != rhs:
            mismatch_total += 1
            if len(examples) < _MAX_DIFF_EXAMPLES:
                examples.append({
                    "epoch": epoch, "client": client, "position": position,
                    "request": trace.epochs[epoch].requests[client][position],
                    "live": lhs, "reference": rhs,
                })
    return {
        "compared": compared,
        "missing": missing,
        "mismatches": mismatch_total,
        "identical": missing == 0 and mismatch_total == 0,
        "examples": examples,
    }


# -- append bit-identity check ------------------------------------------------


def _masks_identical(maintained, rebuilt, dense: bool) -> bool:
    if set(maintained.patterns()) != set(rebuilt.patterns()):
        return False
    for pattern in rebuilt.patterns():
        left, right = maintained.mask(pattern), rebuilt.mask(pattern)
        if dense:
            left, right = left._as_int(), right._as_int()
        if left != right:
            return False
        if maintained.coverage(pattern) != rebuilt.coverage(pattern):
            return False
    return True


def check_append_identity(
    answers: AnswerSet, events: list[AppendEvent], L: int
) -> dict[str, Any]:
    """Prove pool-after-k-appends ≡ pool-rebuilt-from-scratch, per kernel.

    Runs in-process (transport-independent): maintains one
    :class:`~repro.core.semilattice.ClusterPool` through every append
    event via :meth:`~repro.core.semilattice.ClusterPool.extended`, then
    rebuilds from the final answer set and compares patterns, raw masks,
    and coverage sets for bit-identity, on all three kernels.
    """
    from repro.core.semilattice import ClusterPool

    verdicts: dict[str, bool] = {}
    for kernel in ("python", "bitset", "dense"):
        maintained = ClusterPool(answers, L, kernel=kernel)
        current = answers
        for event in events:
            current, delta = current.extended(
                [tuple(row) for row in event.rows], list(event.values)
            )
            maintained = maintained.extended(current, delta)
        rebuilt = ClusterPool(current, L, kernel=kernel)
        verdicts[kernel] = _masks_identical(
            maintained, rebuilt, dense=(kernel == "dense")
        )
    return {
        "kernels": verdicts,
        "batches": len(events),
        "rows_appended": sum(len(event.rows) for event in events),
        "identical": all(verdicts.values()),
    }


# -- span rollups -------------------------------------------------------------


def _sum_named_spans(spans: list[dict[str, Any]], name: str) -> float:
    """Total duration of every span called *name* anywhere in the tree."""
    total = 0.0
    for node in spans:
        if node.get("name") == name:
            total += float(node.get("duration_seconds", 0.0))
        total += _sum_named_spans(node.get("children", []), name)
    return total


def span_rollup(traces: list[dict[str, Any]]) -> dict[str, Any]:
    """Per-kind queue-wait vs compute split from finished trace trees.

    For each request kind: how much traced time sat in shard queues
    (``scheduler.queue``) vs actually computing (``scheduler.worker``, or
    ``engine.request`` on the schedulerless stdio transport), plus the
    p95 of the per-trace *overhead fraction* — the share of a request's
    wall time spent anywhere but compute.  The fraction is
    machine-independent, so ``max_p95_overhead`` floors stay meaningful
    across hardware and localize a latency regression to a layer.

    Coalesced followers never compute (their time *is* the leader's
    compute window), so they count toward the split totals but are
    excluded from the overhead distribution — otherwise every coalesce
    hit would read as 100% overhead.
    """
    buckets: dict[str, dict[str, Any]] = {}
    overheads: dict[str, list[float]] = {}
    for tree in traces:
        kind = tree.get("kind", "unknown")
        spans = tree.get("spans", [])
        queue = _sum_named_spans(spans, "scheduler.queue")
        compute = _sum_named_spans(spans, "scheduler.worker")
        if compute == 0.0:
            compute = _sum_named_spans(spans, "engine.request")
        duration = float(tree.get("duration_seconds", 0.0))
        bucket = buckets.setdefault(kind, {
            "traces": 0, "queue_seconds": 0.0, "compute_seconds": 0.0,
        })
        bucket["traces"] += 1
        bucket["queue_seconds"] += queue
        bucket["compute_seconds"] += compute
        coalesced = bool(tree.get("annotations", {}).get("coalesced"))
        if duration > 0.0 and not coalesced:
            overheads.setdefault(kind, []).append(
                max(0.0, duration - min(compute, duration)) / duration
            )
    for kind, bucket in buckets.items():
        values = sorted(overheads.get(kind, []))
        if values:
            index = min(len(values) - 1, int(0.95 * len(values)))
            bucket["overhead_p95"] = values[index]
        else:
            bucket["overhead_p95"] = 0.0
    return dict(sorted(buckets.items()))


# -- scoring -----------------------------------------------------------------


def _score(
    trace: Trace,
    recorder: _Recorder,
    stats: dict[str, Any],
    differential: dict[str, Any],
    append_check: dict[str, Any] | None,
    spans: dict[str, Any],
) -> dict[str, Any]:
    histograms: dict[str, LatencyHistogram] = {}
    responses = 0
    errors_by_type: dict[str, int] = {}
    for client in range(trace.spec.clients):
        for kind, seconds in recorder.latencies[client]:
            histograms.setdefault(kind, LatencyHistogram()).observe(seconds)
        for response in recorder.responses[client].values():
            responses += 1
            if response.get("kind") == "error":
                error_type = response.get("error_type", "unknown")
                errors_by_type[error_type] = (
                    errors_by_type.get(error_type, 0) + 1
                )
    for client, failures in enumerate(recorder.failures):
        for _ in failures:
            errors_by_type["TransportFailure"] = (
                errors_by_type.get("TransportFailure", 0) + 1
            )
    error_total = sum(errors_by_type.values())
    report: dict[str, Any] = {
        "name": trace.spec.name,
        "spec": trace.spec.to_dict(),
        "requests": trace.total_requests,
        "responses": responses,
        "latency": {
            kind: histogram.summary()
            for kind, histogram in sorted(histograms.items())
        },
        "errors": {
            "total": error_total,
            "rate": (
                error_total / trace.total_requests
                if trace.total_requests else 0.0
            ),
            "by_type": dict(sorted(errors_by_type.items())),
            "client_failures": [
                message
                for failures in recorder.failures
                for message in failures
            ],
        },
        "cache": {
            "pools": stats.get("pools", {}),
            "stores": stats.get("stores", {}),
        },
        "differential": differential,
        "append_check": append_check,
        "spans": spans,
    }
    return report


def run_scenario(spec: ScenarioSpec) -> dict[str, Any]:
    """Execute one scenario end to end and return its scored report."""
    answers = spec.dataset.build()
    trace = compile_trace(spec, answers)

    from repro.service.engine import Engine

    engine = Engine()
    engine.register_dataset(trace.dataset, answers)
    # Arm tracing for the live run (capacity >= the whole workload so the
    # rollup sees every request); responses stay byte-identical, so the
    # differential against the untraced reference replay still holds.
    telemetry = Telemetry(
        tracing=True, trace_buffer=max(32, trace.total_requests)
    )
    recorder, stats = _TRANSPORT_RUNNERS[spec.transport](
        trace, engine, telemetry
    )

    reference = _reference_replay(trace, answers)
    differential = _differential(trace, recorder, reference)

    append_check = None
    if spec.append is not None:
        events = [
            epoch.append for epoch in trace.epochs
            if epoch.append is not None
        ]
        append_check = check_append_identity(
            answers, events, L=max(2, min(4, answers.n))
        )
    spans = span_rollup(telemetry.traces()["recent"])
    return _score(
        trace, recorder, stats, differential, append_check, spans
    )
