"""Declarative scenario specs: what a workload *is*, free of how it runs.

A :class:`ScenarioSpec` names a dataset (synthetic / MovieLens / TPC-DS,
with generator parameters), a session shape (how one client's requests
evolve over a session), a kind mixture (summary/explore/guidance ratios),
a client count, a transport, a seed — and optionally an append stream
(rows arriving between session epochs) and the floors the scenario's
committed report must satisfy.  Everything downstream is derived
deterministically from the spec: :func:`repro.scenarios.trace.compile_trace`
expands it to the exact request lists each client will send, and the
runner executes those against a real server.

Specs round-trip through plain dicts (``to_dict``/``from_dict``) so the
scenario matrix can live in committed JSON and the docs.

>>> from repro.scenarios.spec import DatasetSpec, ScenarioSpec
>>> spec = ScenarioSpec(
...     name="toy", dataset=DatasetSpec("synthetic", {"n": 64}),
...     shape="revisit-heavy", clients=2, steps=3, seed=7,
... )
>>> ScenarioSpec.from_dict(spec.to_dict()) == spec
True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.common.errors import InvalidParameterError

#: The session shapes the trace compiler understands.
SHAPES = ("drill-down-heavy", "revisit-heavy", "cold-churn")

#: Dataset sources and the loader behind each.
DATASET_SOURCES = ("synthetic", "movielens", "tpcds")

#: Transports the runner can execute a trace against.
TRANSPORTS = ("stdio", "tcp", "http")

#: Default request-kind mixture: mostly summaries, a fair share of
#: explores, occasional guidance — the interactive-analyst blend.
DEFAULT_MIXTURE: Mapping[str, float] = {
    "summary": 0.5, "explore": 0.4, "guidance": 0.1,
}


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset generator plus its parameters.

    ``source`` picks the loader (``synthetic`` →
    :func:`repro.datasets.loader.synthetic_answer_set`, ``movielens`` →
    :func:`repro.datasets.loader.movielens_answer_set`, ``tpcds`` →
    :func:`repro.datasets.tpcds.tpcds_answer_set`); ``params`` are passed
    through, so the spec pins the exact content (all three generators are
    seed-deterministic).
    """

    source: str
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.source not in DATASET_SOURCES:
            raise InvalidParameterError(
                "unknown dataset source %r; expected one of %r"
                % (self.source, DATASET_SOURCES)
            )

    def build(self):
        """Materialize the :class:`~repro.core.answers.AnswerSet`."""
        if self.source == "synthetic":
            from repro.datasets.loader import synthetic_answer_set

            return synthetic_answer_set(**self.params)
        if self.source == "movielens":
            from repro.datasets.loader import movielens_answer_set

            return movielens_answer_set(**self.params)
        from repro.datasets.tpcds import tpcds_answer_set

        return tpcds_answer_set(**self.params)

    def to_dict(self) -> dict[str, Any]:
        return {"source": self.source, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "DatasetSpec":
        return cls(raw["source"], dict(raw.get("params", {})))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatasetSpec):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    __hash__ = None


@dataclass(frozen=True)
class AppendSpec:
    """An update stream: *batches* appends of *rows_per_batch* rows each,
    applied between session epochs (the trace gets ``batches + 1``
    epochs).  Rows are generated deterministically from the scenario
    seed, guaranteed distinct from every existing group tuple."""

    batches: int = 1
    rows_per_batch: int = 8

    def __post_init__(self) -> None:
        if self.batches < 1 or self.rows_per_batch < 1:
            raise InvalidParameterError(
                "append stream needs batches >= 1 and rows_per_batch >= 1"
            )

    def to_dict(self) -> dict[str, Any]:
        return {"batches": self.batches, "rows_per_batch": self.rows_per_batch}

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "AppendSpec":
        return cls(raw["batches"], raw["rows_per_batch"])


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative scenario; see the module docstring.

    ``steps`` is requests per client per epoch; total request volume is
    ``clients * steps * (append.batches + 1 if append else 1)``.
    ``floors`` is an open dict the report scorer understands (see
    :mod:`repro.scenarios.report`): e.g. ``{"max_error_rate": 0.0,
    "min_pool_hit_rate": 0.5, "differential_identical": True}``.
    """

    name: str
    dataset: DatasetSpec
    shape: str
    clients: int
    steps: int
    seed: int
    transport: str = "tcp"
    mixture: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_MIXTURE)
    )
    append: AppendSpec | None = None
    floors: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.shape not in SHAPES:
            raise InvalidParameterError(
                "unknown session shape %r; expected one of %r"
                % (self.shape, SHAPES)
            )
        if self.transport not in TRANSPORTS:
            raise InvalidParameterError(
                "unknown transport %r; expected one of %r"
                % (self.transport, TRANSPORTS)
            )
        if self.clients < 1 or self.steps < 1:
            raise InvalidParameterError(
                "scenario needs clients >= 1 and steps >= 1"
            )
        if not self.mixture or any(
            weight < 0 for weight in self.mixture.values()
        ) or sum(self.mixture.values()) <= 0:
            raise InvalidParameterError(
                "mixture must contain non-negative weights summing > 0"
            )
        unknown = set(self.mixture) - {"summary", "explore", "guidance"}
        if unknown:
            raise InvalidParameterError(
                "mixture has unknown kinds: %s" % sorted(unknown)
            )

    @property
    def epochs(self) -> int:
        return (self.append.batches + 1) if self.append else 1

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "name": self.name,
            "dataset": self.dataset.to_dict(),
            "shape": self.shape,
            "clients": self.clients,
            "steps": self.steps,
            "seed": self.seed,
            "transport": self.transport,
            "mixture": dict(self.mixture),
            "floors": dict(self.floors),
        }
        if self.append is not None:
            payload["append"] = self.append.to_dict()
        return payload

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "ScenarioSpec":
        return cls(
            name=raw["name"],
            dataset=DatasetSpec.from_dict(raw["dataset"]),
            shape=raw["shape"],
            clients=raw["clients"],
            steps=raw["steps"],
            seed=raw["seed"],
            transport=raw.get("transport", "tcp"),
            mixture=dict(raw.get("mixture", DEFAULT_MIXTURE)),
            append=(
                AppendSpec.from_dict(raw["append"])
                if raw.get("append") else None
            ),
            floors=dict(raw.get("floors", {})),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScenarioSpec):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    __hash__ = None
