"""Declarative scenario harness: spec -> trace -> real-server run -> report.

See :mod:`repro.scenarios.spec` for the declarative surface,
:mod:`repro.scenarios.trace` for deterministic workload compilation,
:mod:`repro.scenarios.runner` for execution (stdio/TCP/HTTP) with a
single-threaded differential replay, :mod:`repro.scenarios.report` for
floor evaluation, and :mod:`repro.scenarios.matrix` for the committed
scenario matrix behind ``BENCH_scenarios.json``.
"""

from repro.scenarios.report import evaluate_floors, summarize
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import AppendSpec, DatasetSpec, ScenarioSpec
from repro.scenarios.trace import compile_trace

__all__ = [
    "AppendSpec",
    "DatasetSpec",
    "ScenarioSpec",
    "compile_trace",
    "evaluate_floors",
    "run_scenario",
    "summarize",
]
