"""A static centered interval tree (the Section 6.2 retrieval structure).

The precomputation stores, for every cluster, the contiguous interval of k
values for which the cluster belongs to the solution (Continuity,
Proposition 6.1).  Retrieving the solution for a chosen k is then a
*stabbing query*: report every interval containing k.  The classic centered
interval tree (CLRS-style, the paper cites [6]) answers stabbing queries in
O(log N + output) after O(N log N) construction.

Intervals are closed integer intervals ``[low, high]`` with an arbitrary
payload; the tree is immutable after construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generic, Iterable, TypeVar

from repro.common.errors import InvalidParameterError

T = TypeVar("T")


@dataclass(frozen=True)
class Interval(Generic[T]):
    """A closed interval [low, high] carrying a payload."""

    low: int
    high: int
    payload: T

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise InvalidParameterError(
                "interval low %d > high %d" % (self.low, self.high)
            )

    def contains(self, point: int) -> bool:
        return self.low <= point <= self.high


class _Node(Generic[T]):
    __slots__ = ("center", "by_low", "by_high", "left", "right")

    def __init__(
        self,
        center: int,
        overlapping: list[Interval[T]],
        left: "_Node[T] | None",
        right: "_Node[T] | None",
    ) -> None:
        self.center = center
        self.by_low = sorted(overlapping, key=lambda iv: iv.low)
        self.by_high = sorted(overlapping, key=lambda iv: -iv.high)
        self.left = left
        self.right = right


class IntervalTree(Generic[T]):
    """Immutable centered interval tree over closed integer intervals."""

    def __init__(self, intervals: Iterable[Interval[T]]) -> None:
        self._intervals = list(intervals)
        self._root = self._build(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    @staticmethod
    def _build(intervals: list[Interval[T]]) -> _Node[T] | None:
        if not intervals:
            return None
        endpoints = sorted(
            {iv.low for iv in intervals} | {iv.high for iv in intervals}
        )
        center = endpoints[len(endpoints) // 2]
        left_side = [iv for iv in intervals if iv.high < center]
        right_side = [iv for iv in intervals if iv.low > center]
        overlapping = [
            iv for iv in intervals if iv.low <= center <= iv.high
        ]
        return _Node(
            center,
            overlapping,
            IntervalTree._build(left_side),
            IntervalTree._build(right_side),
        )

    def stab(self, point: int) -> list[Interval[T]]:
        """All intervals containing *point*, in deterministic order."""
        found: list[Interval[T]] = []
        node = self._root
        while node is not None:
            if point == node.center:
                found.extend(node.by_low)
                break
            if point < node.center:
                for interval in node.by_low:
                    if interval.low <= point:
                        found.append(interval)
                    else:
                        break
                node = node.left
            else:
                for interval in node.by_high:
                    if interval.high >= point:
                        found.append(interval)
                    else:
                        break
                node = node.right
        found.sort(key=lambda iv: (iv.low, iv.high, repr(iv.payload)))
        return found

    def stab_payloads(self, point: int) -> list[T]:
        """Payloads of all intervals containing *point*."""
        return [interval.payload for interval in self.stab(point)]

    def depth(self) -> int:
        """Tree height (diagnostic; O(log N) for balanced input)."""

        def walk(node: _Node[T] | None) -> int:
            if node is None:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)

    def intervals(self) -> list[Interval[T]]:
        """All stored intervals (construction order)."""
        return list(self._intervals)
