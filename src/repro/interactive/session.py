"""Exploration sessions: the library-level equivalent of the paper's GUI.

Appendix A.3 describes the prototype's flow: the user submits an aggregate
query and parameters (k, L, D); the system initializes a cache (cluster
generation + mapping) once per query, chooses an algorithm, and serves
successive parameter changes from partial updates.  :class:`ExplorationSession`
reproduces that flow as an API:

* per-L cluster pools are cached (the "initialization" phase the paper
  times separately);
* ``solve`` runs a single algorithm invocation (the "single run" mode of
  Figure 7);
* ``precompute``/``retrieve`` serve whole (k, D) ranges via
  :class:`~repro.interactive.precompute.SolutionStore` (the
  "precomputation" mode);
* ``guidance`` produces the Figure 2 view;
* ``expand`` exposes the second display layer (Figure 1c), listing the
  original elements a cluster covers with their global ranks;
* ``compare`` produces the successive-solution visualization data of
  Appendix A.7.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Sequence

from repro.common.errors import InvalidParameterError
from repro.core.answers import AnswerSet
from repro.core.cluster import Cluster
from repro.core.problem import ALGORITHMS, ProblemInstance
from repro.core.semilattice import ClusterPool, MappingStrategy
from repro.core.solution import Solution
from repro.interactive.guidance import GuidanceView, build_guidance_view
from repro.interactive.precompute import SolutionStore


@dataclass(frozen=True)
class TimedSolution:
    """A solution plus the phase breakdown the paper's figures report."""

    solution: Solution
    init_seconds: float
    algo_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.init_seconds + self.algo_seconds


@dataclass(frozen=True)
class ExpandedRow:
    """One second-layer row: an original element with rank and value."""

    rank: int  # 1-based rank in S
    values: tuple[Any, ...]
    value: float


class ExplorationSession:
    """Stateful interactive exploration over one answer set."""

    def __init__(
        self,
        answers: AnswerSet,
        mapping: MappingStrategy = "eager",
    ) -> None:
        self.answers = answers
        self.mapping = mapping
        self._pools: dict[int, ClusterPool] = {}
        self._pool_seconds: dict[int, float] = {}
        self._stores: dict[tuple[int, tuple[int, int], tuple[int, ...]], SolutionStore] = {}

    # -- initialization ---------------------------------------------------------

    def pool(self, L: int) -> ClusterPool:
        """The cluster pool for top-L (cached; building it is 'Init')."""
        cached = self._pools.get(L)
        if cached is not None:
            return cached
        start = time.perf_counter()
        pool = ClusterPool(self.answers, L, strategy=self.mapping)
        self._pool_seconds[L] = time.perf_counter() - start
        self._pools[L] = pool
        return pool

    def init_seconds(self, L: int) -> float:
        """Wall-clock seconds the pool construction for L took (0 if cached
        before this session or not yet built)."""
        self.pool(L)
        return self._pool_seconds.get(L, 0.0)

    # -- single runs -------------------------------------------------------------

    def solve(
        self,
        k: int,
        L: int,
        D: int,
        algorithm: str = "hybrid",
        **kwargs,
    ) -> TimedSolution:
        """One algorithm invocation with the Init/Algo timing split."""
        if algorithm not in ALGORITHMS:
            raise InvalidParameterError(
                "unknown algorithm %r; expected one of %s"
                % (algorithm, sorted(ALGORITHMS))
            )
        pool = self.pool(L)
        init_seconds = self._pool_seconds.get(L, 0.0)
        instance = ProblemInstance(
            self.answers, k=k, L=L, D=D, mapping=self.mapping
        )
        instance._pool = pool  # reuse the session cache
        start = time.perf_counter()
        solution = instance.solve(algorithm, **kwargs)
        return TimedSolution(
            solution=solution,
            init_seconds=init_seconds,
            algo_seconds=time.perf_counter() - start,
        )

    # -- precomputation ------------------------------------------------------------

    def precompute(
        self,
        L: int,
        k_range: tuple[int, int],
        d_values: Sequence[int],
        **kwargs,
    ) -> SolutionStore:
        """Build (and cache) the solution store for all (k, D) at this L."""
        key = (L, tuple(k_range), tuple(sorted(set(d_values))))
        cached = self._stores.get(key)
        if cached is not None:
            return cached
        store = SolutionStore(self.pool(L), k_range, d_values, **kwargs)
        self._stores[key] = store
        return store

    def retrieve(
        self,
        k: int,
        L: int,
        D: int,
        k_range: tuple[int, int],
        d_values: Sequence[int],
    ) -> TimedSolution:
        """Serve (k, D) from the precomputed store, timing the retrieval."""
        store = self.precompute(L, k_range, d_values)
        start = time.perf_counter()
        solution = store.retrieve(k, D)
        return TimedSolution(
            solution=solution,
            init_seconds=self._pool_seconds.get(L, 0.0),
            algo_seconds=time.perf_counter() - start,
        )

    def guidance(
        self,
        L: int,
        k_range: tuple[int, int],
        d_values: Sequence[int],
    ) -> GuidanceView:
        """The Figure 2 parameter-selection view for this L."""
        return build_guidance_view(self.precompute(L, k_range, d_values))

    # -- the two display layers -------------------------------------------------------

    def expand(self, cluster: Cluster) -> list[ExpandedRow]:
        """Second layer (Figure 1c): the elements a cluster covers.

        Rows are ordered by global rank; ``values`` are decoded raw
        attribute values when the answer set has a codec.
        """
        rows = []
        for index in sorted(cluster.covered):
            element = self.answers.elements[index]
            decoded = (
                self.answers.decode(element)
                if self.answers.codec is not None
                else tuple(element)
            )
            rows.append(
                ExpandedRow(
                    rank=index + 1,
                    values=decoded,
                    value=self.answers.values[index],
                )
            )
        return rows

    def describe(self, solution: Solution, expand_all: bool = False) -> str:
        """Render a solution like Figure 1b (or 1c with *expand_all*)."""
        lines = []
        for cluster in solution.clusters:
            decoded = (
                self.answers.decode(cluster.pattern)
                if self.answers.codec is not None
                else cluster.pattern
            )
            rendered = ", ".join(str(v) for v in decoded)
            lines.append(
                "(%s)  avg=%.4f  [%d elements]"
                % (rendered, cluster.avg, cluster.size)
            )
            if expand_all:
                for row in self.expand(cluster):
                    rendered_row = ", ".join(str(v) for v in row.values)
                    lines.append(
                        "    rank %3d: (%s)  val=%.4f"
                        % (row.rank, rendered_row, row.value)
                    )
        return "\n".join(lines)

    # -- successive-solution comparison ------------------------------------------------

    def compare(self, old: Solution, new: Solution):
        """Appendix A.7 comparison view data for two successive solutions."""
        from repro.viz.comparison import build_comparison

        return build_comparison(old, new, self.answers)
