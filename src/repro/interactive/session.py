"""Exploration sessions: the library-level equivalent of the paper's GUI.

Appendix A.3 describes the prototype's flow: the user submits an aggregate
query and parameters (k, L, D); the system initializes a cache (cluster
generation + mapping) once per query, chooses an algorithm, and serves
successive parameter changes from partial updates.  :class:`ExplorationSession`
reproduces that flow as an API:

* initialization (per-L cluster pools, precomputed stores) is delegated to
  a :class:`repro.service.Engine` — by default a private one, but sessions
  can share an engine so concurrent explorations of the same dataset reuse
  each other's initialization work;
* ``solve`` runs a single algorithm invocation (the "single run" mode of
  Figure 7);
* ``precompute``/``retrieve`` serve whole (k, D) ranges via
  :class:`~repro.interactive.precompute.SolutionStore` (the
  "precomputation" mode);
* ``guidance`` produces the Figure 2 view;
* ``expand`` exposes the second display layer (Figure 1c), listing the
  original elements a cluster covers with their global ranks;
* ``compare`` produces the successive-solution visualization data of
  Appendix A.7.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Any, Sequence

from repro.common.errors import InvalidParameterError
from repro.core.answers import AnswerSet
from repro.core.cluster import Cluster
from repro.core.problem import ProblemInstance
from repro.core.registry import validate_algorithm_kwargs
from repro.core.semilattice import ClusterPool, MappingStrategy
from repro.core.solution import Solution
from repro.interactive.guidance import GuidanceView, build_guidance_view
from repro.interactive.precompute import SolutionStore

_session_counter = itertools.count(1)


@dataclass(frozen=True)
class TimedSolution:
    """A solution plus the phase breakdown the paper's figures report."""

    solution: Solution
    init_seconds: float
    algo_seconds: float
    cache_hit: bool = False

    @property
    def total_seconds(self) -> float:
        return self.init_seconds + self.algo_seconds


@dataclass(frozen=True)
class ExpandedRow:
    """One second-layer row: an original element with rank and value."""

    rank: int  # 1-based rank in S
    values: tuple[Any, ...]
    value: float


class ExplorationSession:
    """Stateful interactive exploration over one answer set.

    Parameters
    ----------
    answers:
        The answer set to explore.
    mapping:
        Cluster-to-element mapping strategy for pool construction.
    engine:
        A shared :class:`repro.service.Engine` to draw cached pools and
        stores from.  Omitted, the session creates a private engine —
        the original single-user behaviour.
    dataset:
        Name to register (or find) *answers* under in the engine.
    """

    def __init__(
        self,
        answers: AnswerSet,
        mapping: MappingStrategy = "eager",
        engine=None,
        dataset: str | None = None,
    ) -> None:
        from repro.service.engine import Engine

        self.answers = answers
        self.mapping = mapping
        if engine is None:
            engine = Engine()
        self.engine = engine
        if dataset is None:
            dataset = "session-%d" % next(_session_counter)
        self.dataset = dataset
        try:
            registered = engine.dataset(dataset)
        except InvalidParameterError:
            engine.register_dataset(dataset, answers)
        else:
            if registered is not answers:
                raise ValueError(
                    "dataset %r is already registered with a different "
                    "answer set" % dataset
                )
        self._pool_seconds: dict[int, float] = {}

    # -- initialization ---------------------------------------------------------

    def pool(self, L: int) -> ClusterPool:
        """The cluster pool for top-L (engine-cached; building is 'Init')."""
        pool, build_seconds, cache_hit = self.engine.checkout_pool(
            self.dataset, L, self.mapping
        )
        if not cache_hit:
            self._pool_seconds[L] = build_seconds
        return pool

    def init_seconds(self, L: int) -> float:
        """Wall-clock seconds this session spent building the pool for L
        (0 if it was already cached in the engine)."""
        self.pool(L)
        return self._pool_seconds.get(L, 0.0)

    # -- single runs -------------------------------------------------------------

    def solve(
        self,
        k: int | None,
        L: int,
        D: int,
        algorithm: str = "hybrid",
        **kwargs,
    ) -> TimedSolution:
        """One algorithm invocation with the Init/Algo timing split."""
        validate_algorithm_kwargs(algorithm, kwargs)
        instance = ProblemInstance(
            self.answers, k=k, L=L, D=D, mapping=self.mapping
        )
        # Check out a pool in the requested kernel's mask representation
        # (dense kernels get packed-block pools) so the engine cache is
        # reused instead of the instance building its own.
        pool, init_seconds, cache_hit = self.engine.checkout_pool(
            self.dataset, instance.L, self.mapping,
            kernel=kwargs.get("kernel"),
        )
        if not cache_hit:
            self._pool_seconds[instance.L] = init_seconds
        # Reuse the engine cache, seeding the matching representation slot.
        instance.adopt_pool(pool)
        start = time.perf_counter()
        solution = instance.solve(algorithm, **kwargs)
        return TimedSolution(
            solution=solution,
            init_seconds=init_seconds,
            algo_seconds=time.perf_counter() - start,
            cache_hit=cache_hit,
        )

    # -- precomputation ------------------------------------------------------------

    def precompute(
        self,
        L: int,
        k_range: tuple[int, int],
        d_values: Sequence[int],
    ) -> SolutionStore:
        """The solution store for all (k, D) at this L (engine-cached)."""
        self.pool(L)  # records this session's init cost before the sweep
        store, _seconds, _hit = self.engine.checkout_store(
            self.dataset, L, tuple(k_range), d_values, self.mapping
        )
        return store

    def retrieve(
        self,
        k: int,
        L: int,
        D: int,
        k_range: tuple[int, int],
        d_values: Sequence[int],
    ) -> TimedSolution:
        """Serve (k, D) from the precomputed store, timing the retrieval."""
        self.pool(L)
        store, store_seconds, cache_hit = self.engine.checkout_store(
            self.dataset, L, tuple(k_range), d_values, self.mapping
        )
        start = time.perf_counter()
        solution = store.retrieve(k, D)
        return TimedSolution(
            solution=solution,
            init_seconds=self._pool_seconds.get(L, 0.0) + store_seconds,
            algo_seconds=time.perf_counter() - start,
            cache_hit=cache_hit,
        )

    def guidance(
        self,
        L: int,
        k_range: tuple[int, int],
        d_values: Sequence[int],
    ) -> GuidanceView:
        """The Figure 2 parameter-selection view for this L."""
        return build_guidance_view(self.precompute(L, k_range, d_values))

    # -- the two display layers -------------------------------------------------------

    def expand(self, cluster: Cluster) -> list[ExpandedRow]:
        """Second layer (Figure 1c): the elements a cluster covers.

        Rows are ordered by global rank; ``values`` are decoded raw
        attribute values when the answer set has a codec.
        """
        rows = []
        for index in sorted(cluster.covered):
            element = self.answers.elements[index]
            decoded = (
                self.answers.decode(element)
                if self.answers.codec is not None
                else tuple(element)
            )
            rows.append(
                ExpandedRow(
                    rank=index + 1,
                    values=decoded,
                    value=self.answers.values[index],
                )
            )
        return rows

    def describe(self, solution: Solution, expand_all: bool = False) -> str:
        """Render a solution like Figure 1b (or 1c with *expand_all*)."""
        lines = []
        for cluster in solution.clusters:
            decoded = (
                self.answers.decode(cluster.pattern)
                if self.answers.codec is not None
                else cluster.pattern
            )
            rendered = ", ".join(str(v) for v in decoded)
            lines.append(
                "(%s)  avg=%.4f  [%d elements]"
                % (rendered, cluster.avg, cluster.size)
            )
            if expand_all:
                for row in self.expand(cluster):
                    rendered_row = ", ".join(str(v) for v in row.values)
                    lines.append(
                        "    rank %3d: (%s)  val=%.4f"
                        % (row.rank, rendered_row, row.value)
                    )
        return "\n".join(lines)

    # -- successive-solution comparison ------------------------------------------------

    def compare(self, old: Solution, new: Solution):
        """Appendix A.7 comparison view data for two successive solutions."""
        from repro.viz.comparison import build_comparison

        return build_comparison(old, new, self.answers)
