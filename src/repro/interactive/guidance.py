"""The parameter-selection guidance view (Section 6.1, Figure 2).

For a fixed L, the view plots the objective avg(O) of the precomputed
solution against k, one curve per D.  Reading the curves, a user can spot
*flat regions* (parameter changes that do not affect quality — not worth
exploring), *knee points* (sharp quality drops — interesting boundaries),
and *overlapping curves* (bundles of D values with identical behaviour).
This module computes exactly those artifacts from a
:class:`~repro.interactive.precompute.SolutionStore`, plus an ASCII
rendering used by the example scripts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.interactive.precompute import SolutionStore


@dataclass(frozen=True)
class GuidanceSeries:
    """One curve of the guidance view: avg(O) against k, for a fixed D."""

    D: int
    k_values: tuple[int, ...]
    averages: tuple[float, ...]

    def as_pairs(self) -> list[tuple[int, float]]:
        return list(zip(self.k_values, self.averages))


@dataclass(frozen=True)
class GuidanceView:
    """All curves of Figure 2 for one L, with analysis helpers."""

    L: int
    series: tuple[GuidanceSeries, ...]

    def for_distance(self, D: int) -> GuidanceSeries:
        for candidate in self.series:
            if candidate.D == D:
                return candidate
        raise KeyError("no guidance series for D=%d" % D)

    def knee_points(self, D: int, threshold: float = 0.02) -> list[int]:
        """k values where quality drops sharply when k decreases by one.

        A knee at k means avg(k) - avg(k-1) exceeds *threshold* relative to
        the curve's overall span — the "interesting boundaries" the paper's
        visualization is designed to surface.
        """
        curve = self.for_distance(D)
        pairs = curve.as_pairs()
        if len(pairs) < 2:
            return []
        span = max(a for _, a in pairs) - min(a for _, a in pairs)
        if span <= 0:
            return []
        knees = []
        for (k_lo, avg_lo), (k_hi, avg_hi) in zip(pairs, pairs[1:]):
            if k_hi == k_lo + 1 and (avg_hi - avg_lo) / span > threshold:
                knees.append(k_hi)
        return knees

    def flat_regions(self, D: int, tolerance: float = 1e-9) -> list[tuple[int, int]]:
        """Maximal k ranges where the objective is (nearly) constant."""
        curve = self.for_distance(D)
        pairs = curve.as_pairs()
        regions: list[tuple[int, int]] = []
        start = 0
        for i in range(1, len(pairs) + 1):
            boundary = (
                i == len(pairs)
                or abs(pairs[i][1] - pairs[start][1]) > tolerance
            )
            if boundary:
                if i - start >= 2:
                    regions.append((pairs[start][0], pairs[i - 1][0]))
                start = i
        return regions

    def overlapping_distance_bundles(
        self, tolerance: float = 1e-9
    ) -> list[tuple[int, ...]]:
        """Groups of D values whose curves coincide everywhere.

        Figure 2's overlapping lines: the user can treat such a bundle as a
        single choice of D.
        """
        bundles: list[list[GuidanceSeries]] = []
        for curve in self.series:
            for bundle in bundles:
                reference = bundle[0]
                if reference.k_values == curve.k_values and all(
                    abs(a - b) <= tolerance
                    for a, b in zip(reference.averages, curve.averages)
                ):
                    bundle.append(curve)
                    break
            else:
                bundles.append([curve])
        return [tuple(c.D for c in bundle) for bundle in bundles]

    def render_ascii(self, width: int = 60, height: int = 16) -> str:
        """A terminal rendering of the Figure 2 plot (one glyph per D)."""
        all_avgs = [a for curve in self.series for a in curve.averages]
        all_ks = [k for curve in self.series for k in curve.k_values]
        if not all_avgs:
            return "(empty guidance view)"
        lo, hi = min(all_avgs), max(all_avgs)
        k_lo, k_hi = min(all_ks), max(all_ks)
        if hi - lo <= 0:
            hi = lo + 1.0
        grid = [[" "] * width for _ in range(height)]
        glyphs = "o+x*#@%&"
        for index, curve in enumerate(self.series):
            glyph = glyphs[index % len(glyphs)]
            for k, avg in curve.as_pairs():
                col = (
                    0
                    if k_hi == k_lo
                    else int((k - k_lo) / (k_hi - k_lo) * (width - 1))
                )
                row = int((avg - lo) / (hi - lo) * (height - 1))
                grid[height - 1 - row][col] = glyph
        lines = ["avg value vs k (L=%d)" % self.L]
        lines.append("%.4f +%s" % (hi, "-" * width))
        for row in grid:
            lines.append("       |%s" % "".join(row))
        lines.append("%.4f +%s" % (lo, "-" * width))
        lines.append("        k=%d%sk=%d" % (k_lo, " " * (width - 10), k_hi))
        legend = "  ".join(
            "%s D=%d" % (glyphs[i % len(glyphs)], curve.D)
            for i, curve in enumerate(self.series)
        )
        lines.append("legend: %s" % legend)
        return "\n".join(lines)


def build_guidance_view(store: SolutionStore) -> GuidanceView:
    """Assemble the Figure 2 data from a precomputed store (O(1) per point)."""
    series = []
    k_values = tuple(range(store.k_min, store.k_max + 1))
    for d_value in store.d_values:
        averages = tuple(store.objective(k, d_value) for k in k_values)
        series.append(
            GuidanceSeries(D=d_value, k_values=k_values, averages=averages)
        )
    return GuidanceView(L=store.pool.L, series=tuple(series))
