"""Incremental computation of solutions for whole (k, D) ranges.

Section 6.2: to power the parameter-selection view (Figure 2) and to serve
any (k, D) choice at interactive speed, the Hybrid algorithm's structure is
exploited twice:

1. For a given L, the **Fixed-Order phase** (with pool budget c * k_max)
   runs once; its output seeds the computation for *every* (k, D).
2. For each D, the **Bottom-Up phase** runs once from that shared state:
   after enforcing the distance constraint, every further merge reduces the
   cluster count, so the sweep k = k_max .. k_min falls out of a single run
   — the solution for k is simply the first state with at most k clusters.

By Continuity (Proposition 6.1) a cluster, once merged away, never returns;
hence for fixed (L, D) the set of k values for which a given cluster is in
the solution is one contiguous interval.  We store exactly those intervals
in one :class:`~repro.interactive.interval_tree.IntervalTree` per D, which
reduces storage from O(N_k * N_D) solution sets to O(N_D) trees and serves
retrieval in O(log N_k + answer).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.common.errors import InvalidParameterError
from repro.core.bottom_up import run_distance_phase
from repro.core.cluster import Cluster, Pattern
from repro.core.hybrid import DEFAULT_POOL_FACTOR
from repro.core.fixed_order import fixed_order_engine
from repro.core.merge import MergeEngine
from repro.core.semilattice import ClusterPool
from repro.core.solution import Solution, floor_at_root
from repro.interactive.interval_tree import Interval, IntervalTree


@dataclass(frozen=True)
class PrecomputeTimings:
    """Phase breakdown reported by the Figure 7 experiments.

    ``algo_seconds`` splits into the shared Fixed-Order phase
    (``shared_phase_seconds``) and the per-D Bottom-Up sweeps
    (``sweep_seconds``).  The split lives on ``SolutionStore.timings``
    for programmatic inspection (benchmarks, capacity planning); the wire
    format only carries per-request phase timings.
    """

    init_seconds: float
    algo_seconds: float
    shared_phase_seconds: float = 0.0
    sweep_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.init_seconds + self.algo_seconds


@dataclass
class _DSweep:
    """Per-D results of the Bottom-Up sweep."""

    tree: IntervalTree[Pattern]
    avg_by_k: dict[int, float]
    size_by_k: dict[int, int]
    k_intervals: dict[Pattern, tuple[int, int]] = field(default_factory=dict)


class SolutionStore:
    """Precomputed solutions for all (k, D) combinations at a fixed L.

    Parameters
    ----------
    pool:
        Cluster pool for (S, L); its construction time is the paper's
        "Init" phase and is *not* included in ``timings.algo_seconds``.
    k_range:
        Inclusive (k_min, k_max).
    d_values:
        The D values to sweep (Figure 2 plots one curve per D).
    pool_factor:
        Hybrid's candidate multiplier c.
    shared_phase_distance:
        D used during the shared Fixed-Order phase.  The default 0 is the
        most permissive; each per-D Bottom-Up run then enforces its own D.
    kernel:
        The sweep engines' evaluation kernel (``"bitset"``/``"python"``/
        ``"dense"``/``"auto"``; see :func:`repro.core.bitset.resolve_kernel`).
        A kernel resolving to ``"dense"`` needs *pool* built with
        ``kernel="dense"`` (the merge engine validates); the service
        layer's :meth:`repro.service.Engine.checkout_store` pairs them
        automatically.
    """

    def __init__(
        self,
        pool: ClusterPool,
        k_range: tuple[int, int],
        d_values: Sequence[int],
        pool_factor: int = DEFAULT_POOL_FACTOR,
        shared_phase_distance: int = 0,
        use_delta: bool = True,
        kernel: str | None = None,
        argmax: str | None = None,
    ) -> None:
        k_min, k_max = k_range
        if not 1 <= k_min <= k_max:
            raise InvalidParameterError(
                "invalid k range [%d, %d]" % (k_min, k_max)
            )
        if not d_values:
            raise InvalidParameterError("d_values must be non-empty")
        self.pool = pool
        self.k_min = k_min
        self.k_max = k_max
        self.d_values = tuple(sorted(set(d_values)))
        start = time.perf_counter()
        shared = fixed_order_engine(
            pool,
            budget=max(pool_factor * k_max, k_max),
            D=shared_phase_distance,
            use_delta=use_delta,
            kernel=kernel,
            argmax=argmax,
        )
        self.kernel = shared.kernel
        self.argmax = shared.argmax
        shared_done = time.perf_counter()
        self._sweeps: dict[int, _DSweep] = {}
        for d_value in self.d_values:
            self._sweeps[d_value] = self._sweep_one_d(shared.clone(), d_value)
        end = time.perf_counter()
        self.timings = PrecomputeTimings(
            init_seconds=0.0,
            algo_seconds=end - start,
            shared_phase_seconds=shared_done - start,
            sweep_seconds=end - shared_done,
        )

    # -- sweep ----------------------------------------------------------------

    def _sweep_one_d(self, engine: MergeEngine, d_value: int) -> _DSweep:
        """Enforce D, then merge downward recording each k's solution."""
        run_distance_phase(engine, d_value)
        avg_by_k: dict[int, float] = {}
        size_by_k: dict[int, int] = {}
        first_k: dict[Pattern, int] = {}
        last_k: dict[Pattern, int] = {}

        def record(k: int) -> None:
            avg_by_k[k] = engine.avg()
            size_by_k[k] = engine.size
            for cluster in engine.clusters():
                pattern = cluster.pattern
                if pattern not in first_k:
                    first_k[pattern] = k
                last_k[pattern] = k

        for k in range(self.k_max, self.k_min - 1, -1):
            while engine.size > k:
                pair = engine.best_any_pair()
                if pair is None:
                    break
                engine.merge(*pair)
            record(k)
        intervals = [
            Interval(low=last_k[pattern], high=first_k[pattern],
                     payload=pattern)
            for pattern in first_k
        ]
        sweep = _DSweep(
            tree=IntervalTree(intervals),
            avg_by_k=avg_by_k,
            size_by_k=size_by_k,
        )
        sweep.k_intervals = {
            pattern: (last_k[pattern], first_k[pattern])
            for pattern in first_k
        }
        return sweep

    # -- retrieval --------------------------------------------------------------

    def _sweep(self, D: int) -> _DSweep:
        try:
            return self._sweeps[D]
        except KeyError:
            raise InvalidParameterError(
                "D=%d was not precomputed (have %r)" % (D, self.d_values)
            ) from None

    def retrieve(self, k: int, D: int) -> Solution:
        """The precomputed solution for (k, D): a stabbing query + assembly.

        Floored at the root solution, like the direct algorithm entry
        points: the sweep records raw greedy states, and a forced merge
        trajectory can momentarily sit below the trivial all-star
        average — serving that from the cache would contradict a direct
        ``SummaryRequest`` over the same instance.
        """
        if not self.k_min <= k <= self.k_max:
            raise InvalidParameterError(
                "k=%d outside precomputed range [%d, %d]"
                % (k, self.k_min, self.k_max)
            )
        patterns = self._sweep(D).tree.stab_payloads(k)
        clusters = [self.pool.cluster(p) for p in patterns]
        return floor_at_root(
            Solution.from_clusters(clusters, self.pool.answers), self.pool
        )

    def objective(self, k: int, D: int) -> float:
        """avg(O) of the precomputed solution for (k, D) — O(1) lookup.

        Root-floored, consistent with :meth:`retrieve`.
        """
        recorded = self._sweep(D).avg_by_k[k]
        root_avg = self.pool.root().avg
        return recorded if recorded >= root_avg else root_avg

    def solution_size(self, k: int, D: int) -> int:
        """|O| of the precomputed solution for (k, D).

        Reports 1 (the root cluster) when the recorded state is below
        the root floor, consistent with :meth:`retrieve`.
        """
        sweep = self._sweep(D)
        if sweep.avg_by_k[k] < self.pool.root().avg:
            return 1
        return sweep.size_by_k[k]

    def cluster_lifetime(self, pattern: Pattern, D: int) -> tuple[int, int] | None:
        """The contiguous [k_low, k_high] interval where *pattern* is in the
        solution (None if it never appears) — Proposition 6.1's object."""
        return self._sweep(D).k_intervals.get(pattern)

    def stored_interval_count(self) -> int:
        """Total intervals across all D trees (the storage cost metric)."""
        return sum(len(sweep.tree) for sweep in self._sweeps.values())

    def naive_storage_count(self) -> int:
        """Cluster references a per-(k, D) materialization would store."""
        return sum(
            sweep.size_by_k[k]
            for sweep in self._sweeps.values()
            for k in range(self.k_min, self.k_max + 1)
        )


def precompute(
    pool: ClusterPool,
    k_range: tuple[int, int],
    d_values: Sequence[int],
    **kwargs,
) -> SolutionStore:
    """Convenience constructor mirroring the paper's terminology."""
    return SolutionStore(pool, k_range, d_values, **kwargs)
