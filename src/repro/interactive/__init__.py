"""Interactive layer (Section 6): precomputation, guidance, sessions."""

from repro.interactive.interval_tree import Interval, IntervalTree
from repro.interactive.precompute import (
    PrecomputeTimings,
    SolutionStore,
    precompute,
)
from repro.interactive.guidance import (
    GuidanceSeries,
    GuidanceView,
    build_guidance_view,
)
from repro.interactive.session import (
    ExpandedRow,
    ExplorationSession,
    TimedSolution,
)

__all__ = [
    "Interval",
    "IntervalTree",
    "PrecomputeTimings",
    "SolutionStore",
    "precompute",
    "GuidanceSeries",
    "GuidanceView",
    "build_guidance_view",
    "ExpandedRow",
    "ExplorationSession",
    "TimedSolution",
]
