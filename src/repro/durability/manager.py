"""Durability orchestration: snapshots + WALs per dataset, plus recovery.

:class:`DurabilityManager` owns one directory per dataset under the
server's ``--data-dir``::

    <data_dir>/<quoted dataset name>/snapshot.json   (atomic, complete)
    <data_dir>/<quoted dataset name>/wal.log         (append-only records)

and hooks into the engine at exactly three points:

* :meth:`record_register` — a dataset was (re)registered: write its
  snapshot, reset its WAL.  Registration is the durable baseline every
  later append builds on.
* :meth:`record_append` — an ``append_rows`` batch passed validation:
  append one WAL record *before* the engine publishes the new version.
  If the WAL write fails, the exception aborts the append and nothing
  is published — the ack contract runs through this method.
* :meth:`maybe_compact` — after a publish, fold the WAL into a fresh
  snapshot once it crosses the size/record thresholds.  Snapshot first,
  then truncate; a crash between the two is covered by the snapshot's
  ``seq`` (recovery skips already-applied records).

Recovery (:meth:`recover`) replays each dataset through the engine's own
``register_dataset`` + ``append_rows`` — the same
:meth:`~repro.core.answers.AnswerSet.extended` / version-bump path live
appends take — so a recovered engine is bit-identical to one that never
crashed: same codes (domains re-interned in snapshot order), same ranks,
same pools on every kernel.  Torn WAL tails are truncated to the longest
valid record prefix (counted in ``wal_truncated``), never fatal.

:meth:`seal` is the drain contract: flush + fsync every WAL, then refuse
further mutations with :class:`~repro.common.errors.ShuttingDown` so a
late ``append_rows`` can never slip rows past the final fsync.
"""

from __future__ import annotations

import os
import threading
import time
import urllib.parse
from typing import Any

from repro.common.errors import ShuttingDown
from repro.durability.snapshot import load_snapshot, write_snapshot
from repro.durability.wal import FSYNC_POLICIES, WriteAheadLog, scan

__all__ = [
    "DurabilityManager",
    "COMPACT_THRESHOLD_BYTES",
    "COMPACT_THRESHOLD_RECORDS",
]

#: Compact a dataset's WAL once it holds this many bytes ...
COMPACT_THRESHOLD_BYTES = 1 << 20
#: ... or this many records, whichever trips first.
COMPACT_THRESHOLD_RECORDS = 256

_SNAPSHOT_FILE = "snapshot.json"
_WAL_FILE = "wal.log"


class DurabilityManager:
    """Per-dataset durability under one data directory.

    Parameters
    ----------
    data_dir:
        Root directory (created if missing).  One subdirectory per
        dataset, named by percent-encoding the dataset name so any
        registered name maps to a safe path component.
    fsync:
        WAL fsync policy, one of :data:`~repro.durability.wal.FSYNC_POLICIES`.
    compact_bytes / compact_records:
        WAL thresholds beyond which :meth:`maybe_compact` folds the log
        into a fresh snapshot.
    """

    def __init__(
        self,
        data_dir: str,
        fsync: str = "always",
        compact_bytes: int = COMPACT_THRESHOLD_BYTES,
        compact_records: int = COMPACT_THRESHOLD_RECORDS,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            # WriteAheadLog would reject it too, but fail at construction
            # so a typo'd --fsync never boots a server.
            from repro.common.errors import InvalidParameterError

            raise InvalidParameterError(
                "unknown fsync policy %r (policies: %s)"
                % (fsync, ", ".join(FSYNC_POLICIES))
            )
        self.data_dir = data_dir
        self.fsync = fsync
        self.compact_bytes = int(compact_bytes)
        self.compact_records = int(compact_records)
        os.makedirs(data_dir, exist_ok=True)
        self._lock = threading.Lock()
        self._wals: dict[str, WriteAheadLog] = {}
        self._seq: dict[str, int] = {}
        self._replaying = False
        self._sealed = False
        self.wal_truncated = 0
        self.snapshots_written = 0
        self.compactions = 0
        self.write_failures = 0
        self.recovery_seconds = 0.0
        self.recovered_datasets = 0
        self.recovered_records = 0
        self.snapshots_unreadable = 0

    # -- paths ---------------------------------------------------------------

    def dataset_dir(self, name: str) -> str:
        return os.path.join(
            self.data_dir, urllib.parse.quote(name, safe="")
        )

    def snapshot_path(self, name: str) -> str:
        return os.path.join(self.dataset_dir(name), _SNAPSHOT_FILE)

    def wal_path(self, name: str) -> str:
        return os.path.join(self.dataset_dir(name), _WAL_FILE)

    # -- engine hooks --------------------------------------------------------

    def record_register(self, name: str, answers) -> None:
        """Persist a (re)registered dataset: snapshot now, empty WAL."""
        if self._replaying:
            return
        with self._lock:
            self._check_open()
            os.makedirs(self.dataset_dir(name), exist_ok=True)
            self._seq[name] = 0
            write_snapshot(self.snapshot_path(name), name, answers, seq=0)
            self.snapshots_written += 1
            wal = self._wals.pop(name, None)
            if wal is not None:
                wal.truncate_to(0)
                self._wals[name] = wal
            else:
                self._wals[name] = WriteAheadLog(
                    self.wal_path(name), fsync=self.fsync
                )

    def record_append(self, name: str, rows, values) -> int:
        """Durably log one validated append batch; returns its seq.

        Raises :class:`ShuttingDown` after :meth:`seal`, and whatever
        ``OSError`` the WAL write hit — in both cases the engine aborts
        the append before publishing, so memory and log stay in step.
        """
        if self._replaying:
            return self._seq.get(name, 0)
        with self._lock:
            self._check_open()
            wal = self._wals.get(name)
            if wal is None:
                # A dataset registered before the manager was attached
                # (or recovered from a snapshot-less dir): start its log
                # lazily from the live engine state at seq 0.
                os.makedirs(self.dataset_dir(name), exist_ok=True)
                wal = WriteAheadLog(self.wal_path(name), fsync=self.fsync)
                self._wals[name] = wal
                self._seq.setdefault(name, 0)
            seq = self._seq.get(name, 0) + 1
            try:
                wal.append({
                    "seq": seq,
                    "rows": [list(row) for row in rows],
                    "values": [float(value) for value in values],
                })
            except OSError:
                self.write_failures += 1
                raise
            self._seq[name] = seq
            return seq

    def maybe_compact(self, name: str, answers) -> bool:
        """Fold the WAL into a fresh snapshot when thresholds trip."""
        if self._replaying:
            return False
        with self._lock:
            if self._sealed:
                return False
            wal = self._wals.get(name)
            if wal is None:
                return False
            if (
                wal.bytes < self.compact_bytes
                and wal.records < self.compact_records
            ):
                return False
            write_snapshot(
                self.snapshot_path(name), name, answers,
                seq=self._seq.get(name, 0),
            )
            self.snapshots_written += 1
            wal.truncate_to(0)
            self.compactions += 1
            return True

    # -- recovery ------------------------------------------------------------

    def recover(self, engine) -> dict[str, Any]:
        """Rebuild *engine*'s datasets from disk; returns a summary.

        Replays through ``engine.register_dataset`` / ``engine.append_rows``
        with persistence suppressed (the records being replayed are the
        durable state), repairing torn WAL tails on disk as it goes.
        """
        start = time.monotonic()
        recovered: list[dict[str, Any]] = []
        self._replaying = True
        try:
            for entry in sorted(os.listdir(self.data_dir)):
                dataset_dir = os.path.join(self.data_dir, entry)
                if not os.path.isdir(dataset_dir):
                    continue
                summary = self._recover_dataset(engine, dataset_dir)
                if summary is not None:
                    recovered.append(summary)
        finally:
            self._replaying = False
        self.recovery_seconds = time.monotonic() - start
        self.recovered_datasets = len(recovered)
        self.recovered_records = sum(item["records"] for item in recovered)
        return {
            "datasets": recovered,
            "recovery_seconds": self.recovery_seconds,
            "wal_truncated": self.wal_truncated,
        }

    def _recover_dataset(
        self, engine, dataset_dir: str
    ) -> dict[str, Any] | None:
        snapshot_path = os.path.join(dataset_dir, _SNAPSHOT_FILE)
        wal_path = os.path.join(dataset_dir, _WAL_FILE)
        try:
            name, answers, snapshot_seq = load_snapshot(snapshot_path)
        except FileNotFoundError:
            # A directory with no snapshot is not a dataset we wrote
            # (registration snapshots before the first append can log).
            return None
        except Exception:
            # An unreadable snapshot never takes the whole boot down;
            # the dataset is simply not served until re-registered.
            self.snapshots_unreadable += 1
            return None
        engine.register_dataset(name, answers, replace=True)
        payloads, valid_bytes, torn = scan(wal_path)
        if torn:
            self._truncate_file(wal_path, valid_bytes)
            self.wal_truncated += 1
        replayed = 0
        last_seq = snapshot_seq
        for payload in payloads:
            seq = payload.get("seq")
            if not isinstance(seq, int) or seq <= snapshot_seq:
                continue  # already folded into the snapshot (compaction)
            rows = [tuple(row) for row in payload.get("rows", [])]
            values = payload.get("values", [])
            engine.append_rows(name, rows, values)
            replayed += 1
            last_seq = seq
        with self._lock:
            self._seq[name] = last_seq
            self._wals[name] = WriteAheadLog(wal_path, fsync=self.fsync)
        return {
            "dataset": name,
            "snapshot_seq": snapshot_seq,
            "records": replayed,
            "torn": torn,
            "n": engine.dataset(name).n,
            "version": engine.dataset_version(name),
        }

    @staticmethod
    def _truncate_file(path: str, size: int) -> None:
        with open(path, "r+b") as handle:
            handle.truncate(size)
            handle.flush()
            os.fsync(handle.fileno())

    # -- lifecycle -----------------------------------------------------------

    def flush(self) -> None:
        """Flush + fsync every open WAL (policy-independent)."""
        with self._lock:
            for wal in self._wals.values():
                wal.flush()

    def seal(self) -> None:
        """Final flush + fsync, then refuse further mutations.

        Idempotent; called by every transport's drain path before exit.
        """
        with self._lock:
            if self._sealed:
                return
            for wal in self._wals.values():
                wal.flush()
                wal.close(fsync=True)
            self._sealed = True

    @property
    def sealed(self) -> bool:
        return self._sealed

    def _check_open(self) -> None:
        if self._sealed:
            raise ShuttingDown(
                "durability layer is sealed (server draining); "
                "the WAL has taken its final fsync"
            )

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Counters for the ``stats`` admin kind and telemetry gauges."""
        with self._lock:
            wal_records = sum(wal.records for wal in self._wals.values())
            wal_bytes = sum(wal.bytes for wal in self._wals.values())
            datasets = len(self._wals)
        return {
            "enabled": True,
            "fsync": self.fsync,
            "datasets": datasets,
            "wal_records": wal_records,
            "wal_bytes": wal_bytes,
            "wal_truncated": self.wal_truncated,
            "snapshots_written": self.snapshots_written,
            "snapshots_unreadable": self.snapshots_unreadable,
            "compactions": self.compactions,
            "write_failures": self.write_failures,
            "recovery_seconds": self.recovery_seconds,
            "recovered_datasets": self.recovered_datasets,
            "recovered_records": self.recovered_records,
            "sealed": self._sealed,
        }
