"""Atomic dataset snapshots: the WAL's compaction target.

A snapshot is one JSON document capturing everything needed to rebuild a
registered :class:`~repro.core.answers.AnswerSet` *bit-identically*:

* the attribute names and — crucially — each attribute's interned value
  **domain in code order**.  Codes are assigned first-seen
  (:class:`~repro.common.interning.ValueInterner`), and the answer-set
  ranking tie-breaks equal values on the element *code* tuple, so a
  recovery that re-derived codes from re-encoded rows could rank ties
  differently than the engine that crashed.  Persisting the domains and
  re-interning them in order reproduces the exact codec state instead;
* the encoded elements in rank order and their values (the constructor
  re-sorts deterministically, so rank order round-trips);
* ``seq`` — the number of WAL append batches already folded into this
  snapshot.  Recovery skips WAL records at or below it, which is what
  makes the snapshot-then-truncate compaction sequence crash-safe: a
  crash between the two steps leaves already-applied records in the WAL,
  and the seq guard keeps them from being applied twice.

Writes follow the same atomic discipline as
:class:`~repro.web.sessions.SessionStore`: ``tempfile.mkstemp`` in the
target directory, write + fsync, ``os.replace``.  A reader (including a
recovery racing a crash) sees either the old complete snapshot or the
new complete snapshot, never a torn one.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any

from repro.common.errors import SchemaError
from repro.common.interning import AttributeCodec
from repro.core.answers import AnswerSet

__all__ = ["SNAPSHOT_SCHEMA", "write_snapshot", "load_snapshot"]

#: Version stamp inside every snapshot document.
SNAPSHOT_SCHEMA = 1


def snapshot_document(
    name: str, answers: AnswerSet, seq: int
) -> dict[str, Any]:
    """The JSON document for *answers* as dataset *name* at WAL *seq*."""
    codec = answers.codec
    return {
        "schema": SNAPSHOT_SCHEMA,
        "dataset": name,
        "seq": int(seq),
        "attributes": list(codec.attributes) if codec is not None else None,
        "domains": (
            [list(codec.interner(i).domain()) for i in range(codec.arity)]
            if codec is not None
            else None
        ),
        "elements": [list(element) for element in answers.elements],
        "values": list(answers.values),
    }


def write_snapshot(path: str, name: str, answers: AnswerSet, seq: int) -> int:
    """Atomically write the snapshot to *path*; returns bytes written."""
    document = snapshot_document(name, answers, seq)
    body = json.dumps(document, sort_keys=True).encode("utf-8")
    directory = os.path.dirname(path) or "."
    fd, temp_path = tempfile.mkstemp(
        prefix=".snapshot-", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(body)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    _fsync_directory(directory)
    return len(body)


def load_snapshot(path: str) -> tuple[str, AnswerSet, int]:
    """Read a snapshot -> ``(dataset_name, answers, seq)``.

    Raises :class:`~repro.common.errors.SchemaError` for documents that
    are unreadable or structurally wrong — the caller (recovery) decides
    whether that is fatal; the atomic write discipline means it only
    happens to files something other than this module produced.
    """
    try:
        with open(path, "rb") as handle:
            document = json.loads(handle.read().decode("utf-8"))
    except FileNotFoundError:
        raise
    except (OSError, ValueError, UnicodeDecodeError) as error:
        raise SchemaError("unreadable snapshot %r: %s" % (path, error))
    if not isinstance(document, dict):
        raise SchemaError("snapshot %r is not a JSON object" % path)
    if document.get("schema") != SNAPSHOT_SCHEMA:
        raise SchemaError(
            "snapshot %r has schema %r; this build reads %r"
            % (path, document.get("schema"), SNAPSHOT_SCHEMA)
        )
    try:
        name = document["dataset"]
        seq = int(document["seq"])
        attributes = document["attributes"]
        domains = document["domains"]
        elements = [tuple(element) for element in document["elements"]]
        values = [float(value) for value in document["values"]]
    except (KeyError, TypeError, ValueError) as error:
        raise SchemaError("malformed snapshot %r: %s" % (path, error))
    if not isinstance(name, str):
        raise SchemaError("snapshot %r has a non-string dataset name" % path)
    codec = None
    if attributes is not None:
        codec = AttributeCodec(attributes)
        for index, domain in enumerate(domains or []):
            interner = codec.interner(index)
            for value in domain:
                interner.intern(value)
    return name, AnswerSet(elements, values, codec), seq


def _fsync_directory(directory: str) -> None:
    """Best-effort fsync of the directory entry after an os.replace."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
