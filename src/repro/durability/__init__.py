"""Durability: write-ahead logging, snapshots, and crash recovery.

The engine's ``append_rows`` is only as real as the disk behind it —
this package is the disk.  :class:`~repro.durability.wal.WriteAheadLog`
logs every acked append batch (length-prefixed, CRC-checked records;
configurable fsync policy), :mod:`repro.durability.snapshot` persists
registered datasets atomically, and
:class:`~repro.durability.manager.DurabilityManager` ties both to the
engine and replays them at boot so a SIGKILLed server comes back
bit-identical to one that never died.  Enabled by ``repro-serve
--data-dir``; without it the engine stays purely in-memory and the wire
is byte-for-byte unchanged.
"""

from repro.durability.manager import DurabilityManager
from repro.durability.snapshot import load_snapshot, write_snapshot
from repro.durability.wal import FSYNC_POLICIES, WriteAheadLog, scan

__all__ = [
    "DurabilityManager",
    "FSYNC_POLICIES",
    "WriteAheadLog",
    "load_snapshot",
    "scan",
    "write_snapshot",
]
