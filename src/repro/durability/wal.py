"""The per-dataset write-ahead log: length-prefixed, checksummed records.

One WAL file per dataset, one record per acked ``append_rows`` batch.
The record format is a text line::

    <payload_len>:<crc32_hex>:<payload_json>\\n

where ``payload_len`` is the byte length of the UTF-8 payload and the
CRC-32 is over those same bytes.  The redundancy is what makes a torn
tail *detectable*: a record whose frame is malformed, whose payload is
shorter than its declared length, whose checksum does not match, or that
is missing its trailing newline marks the exact point where a crash cut
the log off.  :func:`scan` finds the longest valid record prefix and
reports everything after it as torn; recovery truncates there and
replays only what was durably acked.

Write discipline (the ack contract): a record is written and flushed —
and, under the ``always`` fsync policy, fsynced — before
:meth:`WriteAheadLog.append` returns, and the engine only publishes (and
the transport only acks) an append after that return.  If the write
fails partway (injected ``short-write``/``enospc`` faults, or a real
disk error), the log truncates itself back to the last good record
before raising, so one failed append never makes the records behind it
unreadable.

Fsync policies:

``always``
    ``os.fsync`` after every record — an acked append survives power
    loss, at the cost of a disk round-trip per batch.
``batch``
    fsync every :data:`BATCH_FSYNC_EVERY` records and on every explicit
    :meth:`~WriteAheadLog.flush`/:meth:`~WriteAheadLog.close` — bounded
    loss window, amortized cost.
``never``
    no fsync during normal appends (the OS page cache decides); still
    fsynced by ``close(fsync=True)``, which the server's drain path
    always requests.
"""

from __future__ import annotations

import errno
import json
import os
import zlib
from typing import Any, Iterable

from repro.common.errors import InvalidParameterError
from repro.common.faults import FaultShortWrite, fault_point

__all__ = [
    "FSYNC_POLICIES",
    "BATCH_FSYNC_EVERY",
    "WriteAheadLog",
    "encode_record",
    "scan",
]

#: The legal ``--fsync`` values, in decreasing order of paranoia.
FSYNC_POLICIES = ("always", "batch", "never")

#: Under the ``batch`` policy, fsync once per this many appended records.
BATCH_FSYNC_EVERY = 32

_SEPARATOR = b":"


def encode_record(payload: dict[str, Any]) -> bytes:
    """Frame *payload* as one WAL record (bytes, newline-terminated)."""
    body = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return b"%d:%08x:%s\n" % (len(body), crc, body)


def _parse_one(data: bytes, offset: int) -> tuple[dict[str, Any], int] | None:
    """Parse the record starting at *offset*; None when torn/invalid.

    Returns ``(payload, end_offset)`` for a fully valid record — frame,
    declared length, checksum, JSON body, and trailing newline all check
    out — and ``None`` the moment any of them does not.
    """
    first = data.find(_SEPARATOR, offset)
    if first < 0 or first == offset:
        return None
    second = data.find(_SEPARATOR, first + 1)
    if second < 0:
        return None
    try:
        length = int(data[offset:first])
    except ValueError:
        return None
    crc_text = data[first + 1:second]
    if length < 0 or len(crc_text) != 8:
        return None
    try:
        crc_declared = int(crc_text, 16)
    except ValueError:
        return None
    body_start = second + 1
    body_end = body_start + length
    # The newline is part of the valid record: a record missing it is a
    # write the crash interrupted even if length+CRC happen to hold.
    if body_end + 1 > len(data) or data[body_end:body_end + 1] != b"\n":
        return None
    body = data[body_start:body_end]
    if (zlib.crc32(body) & 0xFFFFFFFF) != crc_declared:
        return None
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    return payload, body_end + 1


def scan(path: str) -> tuple[list[dict[str, Any]], int, bool]:
    """Read a WAL file -> ``(payloads, valid_bytes, torn)``.

    *payloads* are the decoded records of the longest valid prefix,
    *valid_bytes* is that prefix's byte length (the truncation point for
    repair), and *torn* reports whether any bytes — however mangled —
    follow it.  Never raises on corrupt content: a WAL that cannot be
    read past offset X simply recovers X bytes' worth of appends.  A
    missing file is an empty log.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return [], 0, False
    payloads: list[dict[str, Any]] = []
    offset = 0
    while offset < len(data):
        parsed = _parse_one(data, offset)
        if parsed is None:
            return payloads, offset, True
        payload, offset = parsed
        payloads.append(payload)
    return payloads, offset, False


class WriteAheadLog:
    """An append-only record log with a configurable fsync policy.

    Opens (creating if needed) the file at *path* positioned after the
    longest valid record prefix; callers that want torn tails repaired
    on disk run :func:`scan` + :meth:`truncate_to` first (what
    :class:`~repro.durability.manager.DurabilityManager` does at boot).
    """

    def __init__(self, path: str, fsync: str = "always") -> None:
        if fsync not in FSYNC_POLICIES:
            raise InvalidParameterError(
                "unknown fsync policy %r (policies: %s)"
                % (fsync, ", ".join(FSYNC_POLICIES))
            )
        self.path = path
        self.fsync = fsync
        _payloads, valid_bytes, _torn = scan(path)
        self.records = len(_payloads)
        self._unsynced = 0
        self._file = open(path, "ab")
        # 'ab' positions at EOF; appends must land after the *valid*
        # prefix (manager repairs torn tails before constructing us, so
        # normally EOF == valid_bytes — this is belt and braces).
        self._file.truncate(valid_bytes)
        self._file.seek(valid_bytes)
        self._offset = valid_bytes
        self._closed = False

    @property
    def bytes(self) -> int:
        """Bytes of valid records currently in the log."""
        return self._offset

    def append(self, payload: dict[str, Any]) -> int:
        """Durably append one record; returns the new record count.

        The record is written and flushed before this returns; under
        ``fsync="always"`` it is also fsynced.  On any failure — real
        disk error or an armed ``wal.write``/``wal.fsync`` fault — the
        log truncates back to the previous record boundary and re-raises
        as ``OSError``, so the caller must not publish the append and
        the log stays replayable.
        """
        if self._closed:
            raise OSError(errno.EBADF, "write-ahead log is closed")
        record = encode_record(payload)
        try:
            try:
                fault_point("wal.write")
            except FaultShortWrite as fault:
                keep = fault.keep_bytes
                if keep <= 0 or keep >= len(record):
                    keep = len(record) // 2
                self._file.write(record[:keep])
                self._file.flush()
                raise OSError(
                    errno.EIO,
                    "short write: %d of %d bytes of WAL record persisted"
                    % (keep, len(record)),
                ) from None
            self._file.write(record)
            self._file.flush()
            if self.fsync == "always":
                self._fsync()
            elif self.fsync == "batch":
                self._unsynced += 1
                if self._unsynced >= BATCH_FSYNC_EVERY:
                    self._fsync()
        except OSError:
            # Undo whatever partial bytes made it out: the records behind
            # this one must stay readable, and a retry must start clean.
            self._file.truncate(self._offset)
            self._file.seek(self._offset)
            raise
        self._offset += len(record)
        self.records += 1
        return self.records

    def _fsync(self) -> None:
        fault_point("wal.fsync")
        os.fsync(self._file.fileno())
        self._unsynced = 0

    def flush(self) -> None:
        """Flush and fsync regardless of policy (the drain contract)."""
        if self._closed:
            return
        self._file.flush()
        self._fsync()

    def truncate_to(self, size: int) -> None:
        """Cut the log to *size* bytes (0 = reset after a compaction)."""
        if not 0 <= size <= self._offset:
            raise InvalidParameterError(
                "truncate size %d outside [0, %d]" % (size, self._offset)
            )
        self._file.truncate(size)
        self._file.seek(size)
        self._file.flush()
        os.fsync(self._file.fileno())
        self._offset = size
        if size == 0:
            self.records = 0
            self._unsynced = 0

    def close(self, fsync: bool = True) -> None:
        if self._closed:
            return
        try:
            self._file.flush()
            if fsync:
                os.fsync(self._file.fileno())
        finally:
            self._closed = True
            self._file.close()

    def replay(self) -> Iterable[dict[str, Any]]:
        """The valid records currently on disk (a fresh :func:`scan`)."""
        payloads, _valid, _torn = scan(self.path)
        return payloads
