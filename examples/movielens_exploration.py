"""The Example 1.1 walkthrough on the synthetic MovieLens dataset.

Reproduces the paper's running example end to end: generate the universal
RatingTable, run the adventure-genre aggregate query through the SQL front
end, display the top/bottom answers (Figure 1a), summarize with k=4, L=8,
D=2 (Figure 1b), expand the clusters (Figure 1c), and then compare against
the k=3 solution with the Appendix A.7 comparison view (Figure 13).

Run:  python examples/movielens_exploration.py
"""

from __future__ import annotations

from repro.core.problem import summarize
from repro.datasets.loader import example_query_answers
from repro.interactive import ExplorationSession
from repro.viz.comparison import build_comparison


def main() -> None:
    print("generating synthetic MovieLens and running the Example 1.1 query...")
    answers = example_query_answers()
    print("query returned n=%d groups over m=%d attributes\n" % (
        answers.n, answers.m))

    print("top-8 and bottom-3 answers (Figure 1a):")
    for rank in list(range(8)):
        print("  #%2d %s  val=%.2f" % (
            rank + 1, answers.decode(answers.elements[rank]),
            answers.values[rank]))
    print("   ...")
    for rank in range(answers.n - 3, answers.n):
        print("  #%2d %s  val=%.2f" % (
            rank + 1, answers.decode(answers.elements[rank]),
            answers.values[rank]))

    session = ExplorationSession(answers)
    timed = session.solve(k=4, L=8, D=2, algorithm="hybrid")
    print("\nclusters for k=4, L=8, D=2 (Figure 1b) "
          "[init %.0f ms, algo %.0f ms]:" % (
              timed.init_seconds * 1e3, timed.algo_seconds * 1e3))
    print(session.describe(timed.solution))

    print("\nexpanded second layer (Figure 1c):")
    print(session.describe(timed.solution, expand_all=True))

    smaller = summarize(answers, k=3, L=8, D=2, algorithm="hybrid")
    print("\nchanging k=4 -> k=3 redistributes the clusters (Figure 13):")
    view = build_comparison(timed.solution, smaller, answers, L=8)
    print(view.render_ascii())

    print("\nparameter guidance (Figure 2) for L=15:")
    guidance = session.guidance(L=15, k_range=(2, 15), d_values=[1, 2, 3, 4])
    print(guidance.render_ascii(width=56, height=12))
    for D in (1, 2):
        print("knee points for D=%d: %s" % (D, guidance.knee_points(D)))
    print("overlapping D bundles: %s" % guidance.overlapping_distance_bundles())


if __name__ == "__main__":
    main()
