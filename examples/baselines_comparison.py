"""Qualitative comparison with related approaches (Appendix A.5).

Runs the Example 1.1 query answers through smart drill-down, diversified
top-k, DisC diversity, and the lambda-parameterized MMR baseline, next to
our framework's output — reproducing the comparison tables of
Appendix A.5 and their punchline: the baselines either prefer prevalent
but non-discriminative patterns, or return raw elements without *-value
summaries.

Run:  python examples/baselines_comparison.py
"""

from __future__ import annotations

from repro.baselines.disc import disc_greedy
from repro.baselines.diversified_topk import diversified_topk_exact
from repro.baselines.mmr import mmr_select
from repro.baselines.smart_drilldown import smart_drilldown
from repro.core.problem import summarize
from repro.datasets.loader import example_query_answers


def main() -> None:
    answers = example_query_answers()
    print("Example 1.1 query: n=%d answers\n" % answers.n)

    ours = summarize(answers, k=4, L=10, D=2, algorithm="hybrid")
    print("== our framework (k=4, L=10, D=2) ==")
    for cluster in ours.clusters:
        print("  %s  avg=%.3f  covers=%d" % (
            answers.decode(cluster.pattern), cluster.avg, cluster.size))
    print("  objective avg(O) = %.3f" % ours.avg)

    print("\n== smart drill-down on top-10 elements (A.5.1) ==")
    for rule in smart_drilldown(answers, k=4, restrict_to_top=10):
        print("  %s  mcount=%d  avg=%.3f" % (
            answers.decode(rule.pattern), rule.marginal_count,
            rule.marginal_avg))

    print("\n== smart drill-down on all elements (A.5.1) ==")
    for rule in smart_drilldown(answers, k=4):
        print("  %s  mcount=%d  avg=%.3f" % (
            answers.decode(rule.pattern), rule.marginal_count,
            rule.marginal_avg))

    print("\n== diversified top-k on top-10 (A.5.2) ==")
    for rep in diversified_topk_exact(answers, k=4, D=2, L=10):
        print("  %s  score=%.3f  avg-score(<=D-1)=%.3f" % (
            answers.decode(rep.element), rep.score, rep.neighbourhood_avg))

    print("\n== DisC diversity on top-10 (A.5.3) ==")
    for rep in disc_greedy(answers, D=2, L=10):
        print("  %s  score=%.3f  avg-score(<=D)=%.3f" % (
            answers.decode(rep.element), rep.score, rep.neighbourhood_avg))

    print("\n== MMR lambda-parameterized (A.5.4) ==")
    for lam in (0.0, 0.5, 1.0):
        picks = mmr_select(answers, k=4, lam=lam, L=10)
        print("  lambda=%.1f:" % lam)
        for pick in picks:
            print("    %s  score=%.3f" % (
                answers.decode(pick.element), pick.score))

    print("\nNote how only our output exposes *-value patterns whose")
    print("averages exceed the baselines' cluster averages, and avoids")
    print("patterns prevalent among low-valued answers.")


if __name__ == "__main__":
    main()
