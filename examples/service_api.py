"""The service wire format: JSON requests in, JSON responses out.

Demonstrates what travels over the wire for each request kind — the same
schema-versioned payloads ``repro-summarize --json`` prints and
``repro-serve`` speaks over stdin/stdout.  A request is a plain JSON
object; the engine answers with a JSON object; errors come back as
``kind="error"`` payloads instead of exceptions.

Run:  python examples/service_api.py
"""

from __future__ import annotations

import io
import json

from repro.datasets.loader import synthetic_answer_set
from repro.service import Engine, serve


def show(title: str, payload: dict) -> None:
    print("%s (kind=%s):" % (title, payload.get("kind")))
    print("  " + json.dumps(payload, sort_keys=True)[:300])


def main() -> None:
    engine = Engine()
    engine.register_dataset(
        "synthetic", synthetic_answer_set(300, m=5, domain_size=5, seed=7)
    )

    request = {
        "schema_version": 2,
        "kind": "summary",
        "dataset": "synthetic",
        "k": 4, "L": 10, "D": 2,
        "algorithm": "hybrid",
    }
    show("summary request", request)
    response = engine.submit_dict(request)
    show("summary response (cold)", response)

    response = engine.submit_dict(request)
    print("resubmitted: cache_hit=%s, init_seconds=%.6f"
          % (response["cache_hit"], response["init_seconds"]))

    guidance = engine.submit_dict({
        "schema_version": 2,
        "kind": "guidance",
        "dataset": "synthetic",
        "L": 10, "k_range": [2, 8], "d_values": [1, 2],
    })
    print("guidance response: %d series, cache_hit=%s"
          % (len(guidance["series"]), guidance["cache_hit"]))

    error = engine.submit_dict({
        "schema_version": 2,
        "kind": "summary",
        "dataset": "synthetic",
        "k": 4, "algorithm": "no-such-algorithm",
    })
    show("error response", error)

    print("\nthe same traffic as a JSON-lines serve session:")
    lines = [
        json.dumps({"kind": "ping"}),
        json.dumps(request),
        json.dumps({"kind": "stats"}),
    ]
    stdout = io.StringIO()
    served = serve(io.StringIO("\n".join(lines) + "\n"), stdout,
                   engine=engine)
    for line in stdout.getvalue().splitlines():
        print("  " + line[:120])
    print("served %d responses" % served)


if __name__ == "__main__":
    main()
