"""Quickstart: summarize the top answers of an aggregate query.

Builds a tiny ratings table, runs the paper's aggregate query template
through the SQL front end, registers the result with a service
:class:`~repro.service.Engine`, and submits a typed
:class:`~repro.service.SummaryRequest`: k=3 clusters covering the top L=6
answers with pairwise distance >= 2 — the core operation of the paper,
through the stable API every front end uses.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Engine, SummaryRequest
from repro.query import Relation, execute_sql

ratings = Relation(
    "ratings",
    ("era", "agegrp", "gender", "occupation", "rating"),
    [
        ("1970s", "20s", "M", "student", 5), ("1970s", "20s", "M", "student", 4),
        ("1970s", "20s", "M", "student", 5), ("1980s", "20s", "M", "programmer", 5),
        ("1980s", "20s", "M", "programmer", 4), ("1980s", "10s", "M", "student", 4),
        ("1980s", "10s", "M", "student", 5), ("1980s", "20s", "M", "student", 4),
        ("1980s", "20s", "M", "student", 4), ("1990s", "20s", "M", "student", 2),
        ("1990s", "20s", "M", "student", 3), ("1990s", "30s", "F", "educator", 4),
        ("1990s", "30s", "F", "educator", 4), ("1990s", "30s", "M", "writer", 2),
        ("1990s", "30s", "M", "writer", 3), ("1990s", "20s", "F", "artist", 3),
        ("1990s", "20s", "F", "artist", 2), ("1970s", "30s", "M", "educator", 4),
        ("1970s", "30s", "M", "educator", 5), ("1990s", "40s", "M", "executive", 2),
        ("1990s", "40s", "M", "executive", 3), ("1980s", "30s", "F", "scientist", 4),
        ("1980s", "30s", "F", "scientist", 5), ("1990s", "10s", "F", "student", 3),
        ("1990s", "10s", "F", "student", 2),
    ],
)


def main() -> None:
    result = execute_sql(
        "SELECT era, agegrp, gender, occupation, avg(rating) AS val "
        "FROM ratings GROUP BY era, agegrp, gender, occupation "
        "HAVING count(*) > 1 ORDER BY val DESC",
        ratings,
    )
    answers = result.to_answer_set()
    print("aggregate query returned %d groups; top 3:" % answers.n)
    for rank in range(3):
        print(
            "  #%d %s  val=%.2f"
            % (rank + 1, answers.decode(answers.elements[rank]),
               answers.values[rank])
        )

    engine = Engine()
    engine.register_dataset("ratings", answers)
    response = engine.submit(
        SummaryRequest(dataset="ratings", k=3, L=6, D=2,
                       algorithm="hybrid", include_elements=True)
    )

    print("\nk=3 clusters covering the top 6 (distance >= 2):")
    for cluster in response.clusters:
        rendered = ", ".join(str(v) for v in cluster.pattern)
        print("(%s)  avg=%.4f  [%d elements]"
              % (rendered, cluster.avg, cluster.size))
        for row in cluster.elements:
            print("    rank %3d: (%s)  val=%.4f"
                  % (row.rank, ", ".join(str(v) for v in row.values),
                     row.value))

    print("\nobjective avg(O) = %.3f  (trivial lower bound = %.3f)"
          % (response.objective, answers.avg_all()))
    print("served in %.1f ms (init %.1f ms, cache_hit=%s)"
          % (response.total_seconds * 1e3, response.init_seconds * 1e3,
             response.cache_hit))


if __name__ == "__main__":
    main()
