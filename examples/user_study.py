"""Simulated Section 8 user study on MovieLens-like data.

Regenerates the Table 1 layout: three task groups (varying-method,
varying-k, varying-D), three sections each (patterns-only, memory-only,
patterns+members), with time-per-question, T-accuracy and TH-accuracy over
16 simulated subjects, plus the preference votes.

Run:  python examples/user_study.py
"""

from __future__ import annotations

from repro.datasets.loader import movielens_answer_set
from repro.userstudy import format_table, run_study


def main() -> None:
    answers = movielens_answer_set(m=6, having_count_gt=20)
    print("study data: n=%d answer groups over m=%d attributes\n"
          % (answers.n, answers.m))
    study = run_study(answers, n_subjects=16, seed=0)
    print("Table 1 (simulated subjects):\n")
    print(format_table(study))
    print("\nwith the learning-effect sequence (Table 2 variant):\n")
    sequenced = run_study(answers, n_subjects=16, seed=0,
                          learning_sequence=True)
    print(format_table(sequenced))


if __name__ == "__main__":
    main()
