"""Range-value generalization with concept hierarchies (Appendix A.6).

Instead of collapsing an attribute straight to ``*``, a concept hierarchy
lets clusters carry range values like ``age in [20, 35]`` — the paper's
extension for numeric and date attributes.  This example summarizes a
salary survey by (age, year, role) where age generalizes through a balanced
range tree and year through the year -> half-decade -> decade hierarchy of
Figure 12.

Run:  python examples/hierarchy_ranges.py
"""

from __future__ import annotations

import random

from repro.core.answers import AnswerSet
from repro.hierarchy import (
    GeneralizedSpace,
    build_date_hierarchy,
    build_range_hierarchy,
    star_hierarchy,
)

ROLES = ("engineer", "analyst", "manager", "designer")


def build_answers() -> AnswerSet:
    rng = random.Random(11)
    rows, values, seen = [], [], set()
    while len(rows) < 60:
        age = rng.randrange(22, 62)
        year = rng.randrange(1990, 2000)
        role = rng.choice(ROLES)
        if (age, year, role) in seen:
            continue
        seen.add((age, year, role))
        score = 50.0
        if age < 35 and role == "engineer":
            score += 25.0  # young engineers command a premium
        if year >= 1996:
            score += 10.0  # the dot-com years
        score += rng.gauss(0.0, 4.0)
        rows.append((age, year, role))
        values.append(round(score, 1))
    return AnswerSet.from_rows(rows, values, attributes=("age", "year", "role"))


def main() -> None:
    answers = build_answers()
    ages = sorted({answers.decode(e)[0] for e in answers.elements})
    years = sorted({answers.decode(e)[1] for e in answers.elements})
    roles = [answers.decode(e)[2] for e in answers.elements]
    space = GeneralizedSpace(
        answers,
        [
            build_range_hierarchy(ages, fanout=2, attribute="age"),
            build_date_hierarchy(years),
            star_hierarchy(roles, attribute="role"),
        ],
    )

    print("top-6 answers:")
    for rank in range(6):
        print("  #%d %s  val=%.1f" % (
            rank + 1, answers.decode(answers.elements[rank]),
            answers.values[rank]))

    print("\nhierarchy LCA examples (Figure 11/12):")
    age_tree = space.hierarchies[0]
    print("  join(age %s, age %s) = %s" % (
        ages[2], ages[-3],
        age_tree.lca(age_tree.leaf(ages[2]), age_tree.leaf(ages[-3])).label))
    year_tree = space.hierarchies[1]
    print("  join(1991, 1993) = %s" % year_tree.lca_values(1991, 1993).label)
    print("  join(1991, 1997) = %s" % year_tree.lca_values(1991, 1997).label)

    clusters = space.summarize(k=4, L=8, D=1)
    print("\ngeneralized clusters (k=4, L=8, D=1):")
    for cluster in clusters:
        covered = space.coverage(cluster)
        print("  %s  avg=%.1f  covers=%d" % (
            cluster, space.avg(cluster), len(covered)))


if __name__ == "__main__":
    main()
