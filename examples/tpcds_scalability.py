"""Scalability on the TPC-DS-like store_sales workload (Section 7.4).

Generates a schema-faithful store_sales relation, runs the paper's
avg(net_profit) aggregate query through the engine, then scales the answer
set to tens of thousands of groups with the direct synthesizer and measures
initialization / algorithm / retrieval time for single runs versus
precomputation — the Figure 9 experiment at laptop scale.

Run:  python examples/tpcds_scalability.py
"""

from __future__ import annotations

import time

from repro.datasets.tpcds import (
    SCALABILITY_ATTRIBUTES,
    TpcdsConfig,
    generate_store_sales,
    tpcds_answer_set,
)
from repro.interactive import ExplorationSession
from repro.query.aggregate import AggregateQuery, run_aggregate


def main() -> None:
    print("== end-to-end slice: real rows through the engine ==")
    relation = generate_store_sales(TpcdsConfig(n_rows=60_000, seed=7))
    query = AggregateQuery(
        group_by=SCALABILITY_ATTRIBUTES[:3],
        aggregate="avg",
        target="ss_net_profit",
        having_count_gt=5,
    )
    start = time.perf_counter()
    result = run_aggregate(relation, query)
    print("aggregated %d rows -> %d groups in %.2f s"
          % (len(relation), result.n, time.perf_counter() - start))
    answers = result.to_answer_set()
    session = ExplorationSession(answers)
    timed = session.solve(k=10, L=min(100, answers.n), D=2)
    print("summary of the most profitable segments (k=10):")
    print(session.describe(timed.solution))

    print("\n== scalability: N ~ 20k answer groups (Figure 9 shape) ==")
    big = tpcds_answer_set(n_groups=20_000, m=6, seed=7)
    big_session = ExplorationSession(big)
    for L in (500, 1000, 2000):
        single = big_session.solve(k=20, L=L, D=2, algorithm="hybrid")
        print("  L=%4d single run:      init %.2f s  algo %.2f s  avg=%.2f"
              % (L, big_session.init_seconds(L), single.algo_seconds,
                 single.solution.avg))
        store = big_session.precompute(L, k_range=(10, 20), d_values=[2])
        retrieved = big_session.retrieve(20, L, 2, (10, 20), [2])
        print("           precompute:      algo %.2f s  retrieval %.2f ms"
              % (store.timings.algo_seconds,
                 retrieved.algo_seconds * 1e3))


if __name__ == "__main__":
    main()
