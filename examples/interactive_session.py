"""Interactive parameter exploration with precomputation (Section 6).

Shows the workflow the paper's GUI supports: precompute solutions for a
whole (k, D) grid once, then hop between parameter combinations at
retrieval speed, guided by the Figure 2 view.  Also reports the storage
compression the interval-tree scheme achieves over naive per-(k, D)
materialization (Proposition 6.1).

Sessions here share one :class:`repro.service.Engine` — a second user
exploring the same dataset starts with every pool and store already warm,
which is the whole point of the service layer.

Run:  python examples/interactive_session.py
"""

from __future__ import annotations

import time

from repro.datasets.loader import synthetic_answer_set
from repro.interactive import ExplorationSession
from repro.service import Engine


def main() -> None:
    answers = synthetic_answer_set(2087, m=8, seed=1)
    engine = Engine()
    session = ExplorationSession(answers, engine=engine, dataset="synthetic")
    L, k_range, d_values = 40, (2, 30), [1, 2, 3, 4]

    start = time.perf_counter()
    store = session.precompute(L, k_range, d_values)
    precompute_seconds = time.perf_counter() - start
    print("precomputed %d (k, D) combinations in %.2f s"
          % ((k_range[1] - k_range[0] + 1) * len(d_values),
             precompute_seconds))
    print("  init (cluster generation + mapping): %.2f s"
          % session.init_seconds(L))
    print("  sweep (shared Fixed-Order + per-D Bottom-Up): %.2f s"
          % store.timings.algo_seconds)
    print("  interval-tree storage: %d intervals vs %d cluster refs naive"
          % (store.stored_interval_count(), store.naive_storage_count()))

    print("\nretrievals are interactive:")
    for k, D in [(5, 2), (12, 1), (25, 3), (8, 4)]:
        timed = session.retrieve(k, L, D, k_range, d_values)
        print("  (k=%2d, D=%d) -> %d clusters, avg=%.3f  [%.2f ms]"
              % (k, D, timed.solution.size, timed.solution.avg,
                 timed.algo_seconds * 1e3))

    print("\nsingle dedicated run for comparison:")
    single = session.solve(k=12, L=L, D=1, algorithm="hybrid")
    print("  hybrid(k=12, D=1): avg=%.3f  [%.0f ms]"
          % (single.solution.avg, single.algo_seconds * 1e3))

    print("\na second session on the shared engine starts warm:")
    second = ExplorationSession(answers, engine=engine, dataset="synthetic")
    warm = second.retrieve(12, L, 1, k_range, d_values)
    print("  (k=12, D=1) -> avg=%.3f  [%.2f ms, cache_hit=%s]"
          % (warm.solution.avg, warm.algo_seconds * 1e3, warm.cache_hit))
    stats = engine.stats()
    print("  engine cache: %d/%d pool hits, %d/%d store hits"
          % (stats.pools.hits, stats.pools.hits + stats.pools.misses,
             stats.stores.hits, stats.stores.hits + stats.stores.misses))

    view = session.guidance(L, k_range, d_values)
    print("\n%s" % view.render_ascii(width=56, height=12))
    for D in d_values:
        knees = view.knee_points(D)
        flats = view.flat_regions(D)
        print("D=%d: knee points %s, flat k-regions %s" % (D, knees, flats))


if __name__ == "__main__":
    main()
