"""Recovery benchmark: SIGKILL a durable server mid-append, then verify.

The drill boots ``repro-serve`` as a *subprocess* with ``--data-dir``
(write-ahead logging on, ``--fsync always``), streams append batches at
it over TCP, and SIGKILLs the process mid-stream — no drain, no flush,
the kernel reclaims the socket and whatever the process had buffered.
The server is then restarted on the same port and data directory and
three things are proven:

durability
    every append the client saw acked is present after recovery
    (``recovered_batches >= acked_batches`` — the WAL is written and
    fsynced *before* the ack leaves the server, so an ack is a durable
    promise; records past the last ack may also survive);
bit-identity
    the recovered dataset answers summary queries **byte-identically**
    (timings zeroed) to an uninterrupted in-process reference engine
    holding the same base rows plus the recovered batches — on all
    three kernels (``python``, ``bitset``, ``dense``), because recovery
    replays through the engine's own register/append path;
availability
    a concurrent :class:`repro.server.client.RetryingClient` prober
    rides through the kill + restart window on its retry budget; in
    full mode its availability must clear :data:`AVAILABILITY_FLOOR`.

Usage::

    PYTHONPATH=src python benchmarks/bench_recovery.py [--smoke]
        [--out PATH]

CI runs ``--smoke`` (smaller stream, no availability floor — CI workers
can stall longer than any reasonable retry budget): it still SIGKILLs a
real process, still recovers from a real torn WAL tail if the kill tore
one, and still requires durability and bit-identity to hold exactly.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_server_load import check_transport_parity  # noqa: E402
from repro.query.csv_io import answer_set_from_relation, read_csv  # noqa: E402
from repro.scenarios.runner import normalize_response  # noqa: E402
from repro.server import LineClient, RetryingClient  # noqa: E402
from repro.service import Engine  # noqa: E402
from repro.service.serve import Dispatcher  # noqa: E402

#: Full-mode floor: fraction of prober requests answered (ok or a typed
#: wire error) across the kill + restart window.  The prober's retry
#: budget (~20 s of jittered backoff) is what carries it over the
#: outage; a restart slower than that counts against availability.
AVAILABILITY_FLOOR = 0.99

#: Rows per append batch and the deterministic data seed.  Batches are
#: small so the kill lands *between* WAL records often enough to matter,
#: and the total stays below the manager's compaction threshold so the
#: recovered record count equals the full append history.
ROWS_PER_BATCH = 3
DATA_SEED = 20180837

DATASET = "drill"
ATTRIBUTES = ("region", "tier", "channel")
DOMAINS = (
    tuple("r%02d" % i for i in range(16)),
    tuple("t%d" % i for i in range(8)),
    tuple("c%d" % i for i in range(6)),
)

#: Summary requests used for the bit-identity check: every kernel, two
#: (k, L, D) shapes, second display layer included so element-level
#: ordering (the codec-domain tie-break) is compared too.
IDENTITY_KERNELS = ("python", "bitset", "dense")
IDENTITY_SHAPES = ((5, 8, 1), (7, 10, 2))


def _row_stream() -> list[tuple[list[str], float]]:
    """Every attribute combination once, deterministically shuffled.

    Group-by output tuples must be distinct (:class:`AnswerSet` rejects
    duplicates, and ``append_rows`` rejects rows that already exist), so
    the base relation and every append batch draw *disjoint* slices of
    this permutation.
    """
    rng = random.Random(DATA_SEED)
    combos = [
        [a, b, c]
        for a in DOMAINS[0] for b in DOMAINS[1] for c in DOMAINS[2]
    ]
    rng.shuffle(combos)
    return [
        (row, round(rng.uniform(0.5, 99.5), 3)) for row in combos
    ]


def make_base_csv(path: Path, n: int) -> None:
    """Deterministic base relation: header + the first *n* rows."""
    lines = [",".join(ATTRIBUTES + ("value",))]
    for row, value in _row_stream()[:n]:
        lines.append(",".join(row + ["%.3f" % value]))
    path.write_text("\n".join(lines) + "\n")


def make_batches(
    skip: int, count: int
) -> list[tuple[list[list[str]], list[float]]]:
    """The append stream: *count* batches of :data:`ROWS_PER_BATCH`,
    starting after the first *skip* rows (the base relation)."""
    stream = _row_stream()[skip:skip + count * ROWS_PER_BATCH]
    if len(stream) < count * ROWS_PER_BATCH:
        raise SystemExit("attribute cross-product too small for the drill")
    batches = []
    for index in range(count):
        chunk = stream[index * ROWS_PER_BATCH:(index + 1) * ROWS_PER_BATCH]
        batches.append(
            ([row for row, _ in chunk], [value for _, value in chunk])
        )
    return batches


def pick_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class ServerProcess:
    """One ``repro-serve --tcp --data-dir`` subprocess."""

    def __init__(
        self, port: int, data_dir: Path, csv_path: Path, log_path: Path
    ) -> None:
        self.port = port
        self._log = log_path.open("ab")
        self.process = subprocess.Popen(
            [
                sys.executable, "-c",
                "from repro.cli import serve_main; "
                "raise SystemExit(serve_main())",
                "--tcp", "127.0.0.1:%d" % port,
                "--data-dir", str(data_dir),
                "--fsync", "always",
                str(csv_path),
            ],
            cwd=str(REPO_ROOT),
            env={
                "PYTHONPATH": str(REPO_ROOT / "src"),
                "PATH": "/usr/bin:/bin",
            },
            stdout=self._log,
            stderr=subprocess.STDOUT,
        )

    def wait_ready(self, deadline_seconds: float = 60.0) -> float:
        """Poll ping until the server answers; returns seconds waited."""
        start = time.perf_counter()
        while time.perf_counter() - start < deadline_seconds:
            if self.process.poll() is not None:
                raise SystemExit(
                    "server exited with %r before becoming ready"
                    % self.process.returncode
                )
            try:
                with LineClient("127.0.0.1", self.port, timeout=5) as probe:
                    if probe.request({"kind": "ping"})["kind"] == "pong":
                        return time.perf_counter() - start
            except OSError:
                time.sleep(0.05)
        raise SystemExit(
            "server not ready after %.0f s" % deadline_seconds
        )

    def kill(self) -> None:
        self.process.kill()  # SIGKILL: no drain, no flush, no goodbyes
        self.process.wait(timeout=30)

    def shutdown(self) -> None:
        try:
            with LineClient("127.0.0.1", self.port, timeout=10) as admin:
                admin.request({"kind": "shutdown", "scope": "server"})
        except OSError:
            pass
        try:
            self.process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait(timeout=30)
        finally:
            self._log.close()


def append_request(rows: list[list[str]], values: list[float]) -> dict:
    return {
        "schema_version": 2, "kind": "append_rows", "dataset": DATASET,
        "rows": rows, "values": values,
    }


def probe_request() -> dict:
    return {
        "schema_version": 2, "kind": "summary", "dataset": DATASET,
        "k": 4, "L": 6, "D": 1, "algorithm": "hybrid",
    }


def identity_trace() -> list[dict]:
    trace = []
    for kernel in IDENTITY_KERNELS:
        for k, L, D in IDENTITY_SHAPES:
            trace.append({
                "schema_version": 2, "kind": "summary",
                "dataset": DATASET, "k": k, "L": L, "D": D,
                "algorithm": "hybrid", "include_elements": True,
                "options": {"kernel": kernel},
            })
    return trace


def run_drill(smoke: bool, workdir: Path) -> dict:
    base_rows = 120 if smoke else 360
    batch_count = 12 if smoke else 60
    kill_after = 5 if smoke else 24

    csv_path = workdir / ("%s.csv" % DATASET)
    data_dir = workdir / "data"
    log_path = workdir / "server.log"
    make_base_csv(csv_path, base_rows)
    batches = make_batches(base_rows, batch_count + 1)
    extra_rows, extra_values = batches.pop()
    port = pick_port()

    # --- phase 1: boot, start the prober, stream appends, SIGKILL -----
    server = ServerProcess(port, data_dir, csv_path, log_path)
    first_ready_seconds = server.wait_ready()

    acked = 0
    acked_lock = threading.Lock()
    append_errors: list[str] = []
    kill_gate = threading.Event()   # set once `kill_after` acks are in
    stop_probing = threading.Event()
    probe_outcomes = {"ok": 0, "typed": 0, "unavailable": 0}
    probe_failures: list[str] = []

    def appender() -> None:
        nonlocal acked
        try:
            with LineClient("127.0.0.1", port, timeout=30) as client:
                for rows, values in batches:
                    response = client.request(append_request(rows, values))
                    if response.get("kind") != "rows_appended":
                        append_errors.append(repr(response))
                        return
                    with acked_lock:
                        acked += 1
                        if acked >= kill_after:
                            kill_gate.set()
                    time.sleep(0.002)
        except Exception as error:
            # Expected: the SIGKILL lands mid-stream and the connection
            # dies under us.  Everything acked so far must survive.
            append_errors.append(repr(error))
        finally:
            kill_gate.set()

    def prober() -> None:
        client = RetryingClient(
            "127.0.0.1", port, timeout=10,
            attempts=16, base_delay=0.05, max_delay=1.5,
            rng=random.Random(7),
        )
        with client:
            while not stop_probing.is_set():
                try:
                    response = client.request(probe_request())
                except Exception as error:
                    probe_outcomes["unavailable"] += 1
                    probe_failures.append(repr(error))
                else:
                    if response.get("kind") == "error":
                        probe_outcomes["typed"] += 1
                    else:
                        probe_outcomes["ok"] += 1
                time.sleep(0.02)
        return_counters["retries"] = client.retries
        return_counters["reconnects"] = client.reconnects

    return_counters: dict[str, int] = {}
    probe_thread = threading.Thread(target=prober)
    append_thread = threading.Thread(target=appender)
    probe_thread.start()
    append_thread.start()

    if not kill_gate.wait(timeout=120):
        raise SystemExit("append stream never reached the kill point")
    outage_start = time.perf_counter()
    server.kill()
    append_thread.join(timeout=60)
    with acked_lock:
        acked_batches = acked
    if acked_batches < kill_after:
        raise SystemExit(
            "append stream died after only %d acks (wanted >= %d): %r"
            % (acked_batches, kill_after, append_errors)
        )

    # --- phase 2: restart on the same port + data dir, recover --------
    server = ServerProcess(port, data_dir, csv_path, log_path)
    restart_ready_seconds = server.wait_ready()
    outage_seconds = time.perf_counter() - outage_start

    # Let the prober take a few post-recovery samples, then stop it.
    time.sleep(0.5)
    stop_probing.set()
    probe_thread.join(timeout=60)
    prober_hung = probe_thread.is_alive()

    with LineClient("127.0.0.1", port, timeout=30) as client:
        stats = client.request({"kind": "stats"})
    durability = stats.get("durability", {})
    recovered_batches = durability.get("recovered_records", 0)
    wal_records = durability.get("wal_records", 0)

    # --- phase 3: bit-identity against an uninterrupted reference -----
    reference = Engine()
    reference.register_dataset(
        DATASET, answer_set_from_relation(read_csv(csv_path))
    )
    for rows, values in batches[:recovered_batches]:
        reference.append_rows(
            DATASET, [tuple(row) for row in rows], values
        )
    dispatcher = Dispatcher(reference)

    mismatches: list[dict] = []
    with LineClient("127.0.0.1", port, timeout=60) as client:
        for request in identity_trace():
            recovered = normalize_response(
                client.request(dict(request))
            )
            expected = normalize_response(json.loads(json.dumps(
                dispatcher.dispatch_payload(dict(request)).response,
                sort_keys=True,
            )))
            if recovered != expected:
                mismatches.append({
                    "kernel": request["options"]["kernel"],
                    "k": request["k"], "L": request["L"],
                    "D": request["D"],
                })

    # The recovered server must still be writable (WAL re-opened at the
    # recovered tail, not sealed or wedged).
    with LineClient("127.0.0.1", port, timeout=30) as client:
        post = client.request(append_request(extra_rows, extra_values))
    post_recovery_append_ok = post.get("kind") == "rows_appended"

    server.shutdown()

    total_probes = sum(probe_outcomes.values())
    answered = probe_outcomes["ok"] + probe_outcomes["typed"]
    availability = answered / total_probes if total_probes else 0.0
    return {
        "base_rows": base_rows,
        "batch_count": batch_count,
        "rows_per_batch": ROWS_PER_BATCH,
        "kill_after_acks": kill_after,
        "acked_batches": acked_batches,
        "recovered_batches": recovered_batches,
        "wal_records_after_recovery": wal_records,
        "wal_truncated": durability.get("wal_truncated", 0),
        "recovery_seconds": durability.get("recovery_seconds", 0.0),
        "first_ready_seconds": first_ready_seconds,
        "restart_ready_seconds": restart_ready_seconds,
        "outage_seconds": outage_seconds,
        "identity_requests": len(identity_trace()),
        "identity_mismatches": mismatches,
        "post_recovery_append_ok": post_recovery_append_ok,
        "prober": {
            "total": total_probes,
            "outcomes": dict(probe_outcomes),
            "availability": availability,
            "retries": return_counters.get("retries", 0),
            "reconnects": return_counters.get("reconnects", 0),
            "hung": prober_hung,
            "failures": probe_failures[:5],
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_recovery.json",
        help="output JSON path (default: BENCH_recovery.json at repo root)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="short stream, no availability floor (CI mode)",
    )
    args = parser.parse_args(argv)

    print("checking durability-off transport parity ...", flush=True)
    parity = check_transport_parity()

    import tempfile

    with tempfile.TemporaryDirectory(prefix="bench_recovery_") as tmp:
        print(
            "running kill drill (%s) ..."
            % ("smoke" if args.smoke else "full"), flush=True,
        )
        drill = run_drill(args.smoke, Path(tmp))
    print(
        "  acked %d  recovered %d  availability %.4f  outage %.2fs  "
        "identity mismatches %d"
        % (
            drill["acked_batches"], drill["recovered_batches"],
            drill["prober"]["availability"], drill["outage_seconds"],
            len(drill["identity_mismatches"]),
        )
    )

    # Hard invariants, enforced in both modes: durability of every ack
    # and bit-identical recovered answers.
    if drill["recovered_batches"] < drill["acked_batches"]:
        raise SystemExit(
            "durability violation: %d batches acked but only %d recovered"
            % (drill["acked_batches"], drill["recovered_batches"])
        )
    if drill["identity_mismatches"]:
        raise SystemExit(
            "recovered answers diverged from the uninterrupted "
            "reference: %r" % drill["identity_mismatches"]
        )
    if not drill["post_recovery_append_ok"]:
        raise SystemExit("recovered server rejected a fresh append")
    if drill["prober"]["hung"]:
        raise SystemExit("prober thread hung across the restart")
    if not args.smoke:
        if drill["prober"]["availability"] < AVAILABILITY_FLOOR:
            raise SystemExit(
                "availability regression: %.4f < %.2f floor (%r)"
                % (drill["prober"]["availability"], AVAILABILITY_FLOOR,
                   drill["prober"]["outcomes"])
            )

    document = {
        "schema": 1,
        "benchmark": "BENCH_recovery",
        "smoke": args.smoke,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "availability_floor": AVAILABILITY_FLOOR,
        "identity_kernels": list(IDENTITY_KERNELS),
        "transport_parity": parity,
        "drill": drill,
    }
    args.out.write_text(json.dumps(document, indent=2) + "\n")
    print("wrote %s" % args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
