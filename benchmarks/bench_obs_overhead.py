"""Tracing-overhead harness: armed vs disarmed on the duplicate-heavy trace.

Boots the real :class:`repro.server.tcp.TCPServer` twice per repetition
— once with telemetry disarmed (the production default) and once with
tracing armed (every analytic request builds a span tree and lands in
the ring buffer) — and replays :mod:`bench_server_load`'s closed-loop
multi-client trace against both.  The claim under test is the tentpole's
overhead budget: arming end-to-end tracing may cost at most
:data:`OVERHEAD_P50_CEILING` (5%) in p50 latency on this CPU-bound
workload.  Each mode's p50 is the best across repetitions (noise on a
shared machine only ever inflates a run, so best-of is the honest
estimator for a ratio of medians).

Disarmed-path fidelity is checked first: the golden wire requests must
produce byte-identical stdio/TCP responses (including the committed
golden file), proving the telemetry hooks are invisible when off.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--smoke]
        [--out PATH] [--clients N] [--rounds N] [--reps N]

CI runs ``--smoke`` (tiny sizes, no ceiling enforced): it proves both
legs boot, trace, and shut down cleanly end to end.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))  # for tests.conftest (shared helpers)
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_server_load import (  # noqa: E402
    check_transport_parity,
    make_engine,
    make_trace,
    _percentile,
)
from repro.obs import Telemetry  # noqa: E402
from repro.server import BackgroundServer, LineClient, TCPServer  # noqa: E402

#: Full-mode ceiling on p50(armed) / p50(disarmed): arming end-to-end
#: tracing may cost at most 5% median latency on the duplicate-heavy
#: load trace.  ``tests/test_docs.py`` re-checks the committed ratio.
OVERHEAD_P50_CEILING = 1.05


def run_leg(
    label: str,
    smoke: bool,
    *,
    clients: int,
    rounds: int,
    telemetry: Telemetry | None,
) -> dict:
    """One closed-loop fleet against one (fresh, cold) server."""
    engine = make_engine(smoke)
    trace = make_trace(smoke)
    server = TCPServer(
        engine, port=0,
        shards=4, workers_per_shard=1,
        queue_depth=max(64, clients * len(trace)),
        telemetry=telemetry,
    )
    handle = BackgroundServer(server).start()
    latencies: list[float] = []
    errors: list[dict] = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def client_loop() -> None:
        with LineClient(handle.host, handle.port) as client:
            barrier.wait(timeout=60)
            local: list[float] = []
            for _ in range(rounds):
                for request in trace:
                    start = time.perf_counter()
                    response = client.request(request)
                    local.append(time.perf_counter() - start)
                    if response["kind"] == "error":
                        with lock:
                            errors.append(response)
            with lock:
                latencies.extend(local)

    threads = [threading.Thread(target=client_loop) for _ in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=60)
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join(600)
    wall_seconds = time.perf_counter() - wall_start
    with LineClient(handle.host, handle.port) as admin:
        traces = admin.request({"kind": "trace"})
        ack = admin.request({"kind": "shutdown", "scope": "server"})
    if ack.get("kind") != "shutdown_ack":
        raise SystemExit("server did not acknowledge shutdown: %r" % ack)
    if not handle.stop(timeout=30):
        raise SystemExit(
            "leg %r failed to shut down cleanly within 30s" % label
        )
    if errors:
        raise SystemExit(
            "leg %r produced %d error responses; first: %r"
            % (label, len(errors), errors[0])
        )
    total = clients * rounds * len(trace)
    if len(latencies) != total:
        raise SystemExit(
            "leg %r lost responses: %d of %d"
            % (label, len(latencies), total)
        )
    armed = telemetry is not None
    if armed and traces["recorded"] != total:
        raise SystemExit(
            "armed leg recorded %d traces for %d requests"
            % (traces["recorded"], total)
        )
    if not armed and traces["armed"] is not False:
        raise SystemExit("disarmed leg reports an armed trace buffer")
    return {
        "label": label,
        "armed": armed,
        "total_requests": total,
        "wall_seconds": wall_seconds,
        "throughput_rps": total / wall_seconds,
        "traces_recorded": traces["recorded"],
        "latency": {
            "p50_seconds": _percentile(latencies, 0.50),
            "p95_seconds": _percentile(latencies, 0.95),
            "p99_seconds": _percentile(latencies, 0.99),
            "mean_seconds": sum(latencies) / len(latencies),
            "max_seconds": max(latencies),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_obs.json",
        help="output JSON path (default: BENCH_obs.json at repo root)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny sizes, one repetition, no overhead ceiling (CI mode)",
    )
    parser.add_argument(
        "--clients", type=int, default=None,
        help="closed-loop clients (default: 8 full, 2 smoke)",
    )
    parser.add_argument(
        "--rounds", type=int, default=None,
        help="trace repetitions per client (default: 2 full, 1 smoke)",
    )
    parser.add_argument(
        "--reps", type=int, default=None,
        help="armed/disarmed pairs to run; each mode keeps its best p50 "
        "(default: 3 full, 1 smoke)",
    )
    args = parser.parse_args(argv)
    clients = args.clients or (2 if args.smoke else 8)
    rounds = args.rounds or (1 if args.smoke else 2)
    reps = args.reps or (1 if args.smoke else 3)

    print("checking disarmed stdio/TCP golden parity ...", flush=True)
    parity = check_transport_parity()

    legs: dict[str, list[dict]] = {"disarmed": [], "armed": []}
    for rep in range(reps):
        for mode in ("disarmed", "armed"):
            telemetry = (
                Telemetry(tracing=True) if mode == "armed" else None
            )
            leg = run_leg(
                "%s-rep%d" % (mode, rep), args.smoke,
                clients=clients, rounds=rounds, telemetry=telemetry,
            )
            print(
                "  %-14s p50 %6.1f ms  p95 %6.1f ms  %8.1f req/s"
                % (
                    leg["label"],
                    leg["latency"]["p50_seconds"] * 1e3,
                    leg["latency"]["p95_seconds"] * 1e3,
                    leg["throughput_rps"],
                )
            )
            legs[mode].append(leg)

    best = {
        mode: min(runs, key=lambda leg: leg["latency"]["p50_seconds"])
        for mode, runs in legs.items()
    }
    disarmed_p50 = best["disarmed"]["latency"]["p50_seconds"]
    armed_p50 = best["armed"]["latency"]["p50_seconds"]
    ratio = armed_p50 / disarmed_p50 if disarmed_p50 else 1.0
    print(
        "  p50 ratio armed/disarmed: %.3fx  (ceiling %.2fx, full mode)"
        % (ratio, OVERHEAD_P50_CEILING)
    )
    if not args.smoke and ratio > OVERHEAD_P50_CEILING:
        raise SystemExit(
            "tracing overhead regression: p50 ratio %.3fx exceeds the "
            "%.2fx ceiling (disarmed %.2f ms, armed %.2f ms)"
            % (ratio, OVERHEAD_P50_CEILING,
               disarmed_p50 * 1e3, armed_p50 * 1e3)
        )

    document = {
        "schema": 1,
        "benchmark": "BENCH_obs",
        "smoke": args.smoke,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "trace": {
            "clients": clients,
            "rounds": rounds,
            "reps": reps,
            "distinct_requests": len(make_trace(args.smoke)),
            "n_per_dataset": 512 if args.smoke else 4096,
        },
        "transport_parity": parity,
        "legs": legs,
        "best": best,
        "p50_ratio": ratio,
        "p50_ceiling": OVERHEAD_P50_CEILING,
    }
    args.out.write_text(json.dumps(document, indent=2) + "\n")
    print("wrote %s" % args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
