"""Table 1 and Table 2: the (simulated) user study of Section 8.

Three task groups — varying-method (ours vs decision tree, L=50, k=10,
D=1), varying-k (5 vs 10, L=30, D=1), varying-D (1 vs 3, L=10, k=7) —
three sections each, 16 subjects.  The human subjects are replaced by the
seeded cognitive model of repro.userstudy (see DESIGN.md substitutions);
the reproduction target is the table's qualitative shape:

* our method beats the decision tree on TH-accuracy and on time in the
  patterns-only and memory-only sections, and is overwhelmingly preferred;
* patterns+members is the most accurate and slowest section; memory-only
  the fastest;
* bigger k costs time with patterns on screen; accuracy-vs-memorability
  trade-offs split preferences on k and D.
"""

from __future__ import annotations

from repro.datasets.loader import synthetic_answer_set
from repro.userstudy import format_table, run_study

from conftest import measure


def _answers():
    # domain_size=4 keeps top answers similar enough that D and k bind
    # (the study queries of the paper have exactly this clustered shape).
    return synthetic_answer_set(400, m=5, domain_size=4, seed=3)


def test_table1_user_study(report, benchmark):
    answers = _answers()
    study, seconds = measure(
        lambda: run_study(answers, n_subjects=16, seed=1)
    )
    report.add("Table 1: simulated user study (16 subjects, %.2f s)"
               % seconds)
    report.add("")
    report.add(format_table(study, n_subjects=16))
    report.add("")
    # Qualitative assertions of the paper's headline findings.
    tree = study.varying_method.left
    ours = study.varying_method.right
    assert (
        ours.sections["patterns-only"].th_accuracy_mean
        > tree.sections["patterns-only"].th_accuracy_mean
    ), "our patterns must discriminate high vs low better than the tree"
    assert ours.preferred_by > tree.preferred_by
    for arm in (tree, ours):
        assert (
            arm.sections["memory-only"].time_mean
            < arm.sections["patterns-only"].time_mean
        )
        assert arm.sections["patterns+members"].t_accuracy_mean > 0.85
    report.add("headline checks passed: ours > tree on TH-accuracy, "
               "ours preferred, memory fastest, members most accurate")
    benchmark.pedantic(
        lambda: run_study(answers, n_subjects=4, seed=2),
        rounds=2, iterations=1,
    )


def test_table2_learning_effect(report, benchmark):
    answers = _answers()
    study, seconds = measure(
        lambda: run_study(answers, n_subjects=16, seed=1,
                          learning_sequence=True)
    )
    report.add("Table 2: fixed sequence variant (varying-method first; "
               "%.2f s)" % seconds)
    report.add("")
    report.add(format_table(study, n_subjects=16))
    report.add("")
    baseline = run_study(answers, n_subjects=16, seed=1)
    slower = study.varying_method.right.sections["patterns-only"].time_mean
    faster = baseline.varying_method.right.sections["patterns-only"].time_mean
    assert slower > faster, "first-in-sequence groups take longer"
    report.add("learning effect visible: %.1f s/question first-in-sequence "
               "vs %.1f s baseline" % (slower, faster))
    benchmark.pedantic(
        lambda: run_study(answers, n_subjects=4, seed=3,
                          learning_sequence=True),
        rounds=2, iterations=1,
    )
