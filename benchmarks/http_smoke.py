"""CI smoke for the HTTP front door, driven through the real CLI.

Boots ``repro-serve --http`` as a subprocess (token file, quota, durable
session dir, preloaded CSV), then drives the full tenant lifecycle over
plain urllib: liveness, 401 on a missing token, summary/explore, session
create + step, quota exhaustion to a 429, a Prometheus ``/metrics``
scrape — then shuts the server down via the admin route, asserts exit
code 0, boots a *second* server on the same session directory, and
resumes the session by name to prove restart durability.

Usage::

    PYTHONPATH=src python benchmarks/http_smoke.py

Exit code 0 means every assertion held and both server processes wound
down cleanly.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.web.auth import write_token_file  # noqa: E402

TOKEN = "smoke-token-alice"
QUOTA_CAPACITY = 6

CSV = """era,grp,val
1970s,student,4.5
1970s,educator,4.2
1980s,student,4.0
1980s,engineer,3.9
1990s,student,2.5
1990s,writer,2.2
1990s,artist,2.0
1980s,artist,3.0
"""


def start_server(workdir: Path, session_dir: Path, csv: Path) -> tuple:
    """Launch ``repro-serve --http`` and wait for its ready banner."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    process = subprocess.Popen(
        [
            sys.executable, "-c",
            "from repro.cli import serve_main; "
            "raise SystemExit(serve_main())",
            "--http", "127.0.0.1:0",
            "--auth-tokens", str(workdir / "tokens.txt"),
            "--quota", "%d/3600" % QUOTA_CAPACITY,
            "--session-dir", str(session_dir),
            str(csv),
        ],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    banner_line = process.stdout.readline()
    if not banner_line:
        stderr = process.communicate(timeout=10)[1]
        raise SystemExit("server produced no ready banner:\n%s" % stderr)
    banner = json.loads(banner_line)
    assert banner["kind"] == "ready", banner
    assert banner["transport"] == "http", banner
    assert banner["auth_required"] is True, banner
    assert banner["datasets"] == ["smoke"], banner
    return process, "http://127.0.0.1:%d" % banner["port"]


def call(base, method, path, body=None, token=TOKEN):
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(base + path, data=data, method=method)
    if token is not None:
        request.add_header("Authorization", "Bearer " + token)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            raw = response.read()
            status = response.status
            content_type = response.headers.get("Content-Type", "")
    except urllib.error.HTTPError as error:
        raw = error.read()
        status = error.code
        content_type = error.headers.get("Content-Type", "")
    if content_type.startswith("application/json"):
        return status, json.loads(raw)
    return status, raw.decode("utf-8")


def expect(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit("http_smoke FAILED: %s" % message)


def shutdown(process, base) -> None:
    status, ack = call(
        base, "POST", "/v2/admin/shutdown", {"scope": "server"}
    )
    expect(status == 200 and ack.get("kind") == "shutdown_ack",
           "shutdown not acknowledged: %r" % (ack,))
    try:
        process.wait(timeout=30)
    except subprocess.TimeoutExpired:
        process.kill()
        raise SystemExit("http_smoke FAILED: server did not exit after "
                         "server-scope shutdown")
    expect(process.returncode == 0,
           "server exited %d, want 0" % process.returncode)


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="repro-http-smoke-"))
    session_dir = workdir / "sessions"
    csv = workdir / "smoke.csv"
    csv.write_text(CSV)
    write_token_file(workdir / "tokens.txt", [("alice", TOKEN)])

    print("booting repro-serve --http (auth + quota + sessions) ...",
          flush=True)
    process, base = start_server(workdir, session_dir, csv)
    try:
        status, payload = call(base, "GET", "/healthz", token=None)
        expect(status == 200 and payload["status"] == "ok",
               "healthz: %r" % (payload,))

        status, payload = call(
            base, "POST", "/v2/summary",
            {"schema_version": 2, "dataset": "smoke", "k": 2, "L": 4,
             "D": 1},
            token=None,
        )
        expect(status == 401 and payload["error_type"] == "AuthError",
               "unauthenticated summary: %d %r" % (status, payload))

        status, payload = call(
            base, "POST", "/v2/summary",
            {"schema_version": 2, "dataset": "smoke", "k": 2, "L": 4,
             "D": 1},
        )
        expect(status == 200 and payload["kind"] == "summary_response",
               "summary: %d %r" % (status, payload))

        status, payload = call(
            base, "POST", "/v2/explore",
            {"schema_version": 2, "dataset": "smoke", "k": 2, "L": 4,
             "D": 1, "k_range": [2, 3], "d_values": [1]},
        )
        expect(status == 200 and payload["algorithm"] == "precomputed",
               "explore: %d %r" % (status, payload))

        status, record = call(
            base, "POST", "/v2/sessions",
            {"name": "smoke-session",
             "base": {"schema_version": 2, "kind": "summary",
                      "dataset": "smoke", "k": 2, "L": 4, "D": 1}},
        )
        expect(status == 200 and record["name"] == "smoke-session",
               "session create: %d %r" % (status, record))

        status, payload = call(
            base, "POST", "/v2/sessions/smoke-session/step", {"k": 3}
        )
        expect(status == 200 and payload["k"] == 3,
               "session step: %d %r" % (status, payload))

        # Burn the rest of the bucket with distinct requests -> 429.
        saw_429 = False
        for extra in range(QUOTA_CAPACITY + 2):
            status, payload = call(
                base, "POST", "/v2/summary",
                {"schema_version": 2, "dataset": "smoke",
                 "k": 2 + extra % 3, "L": 4 + extra % 2, "D": 1},
            )
            if status == 429:
                expect(payload["error_type"] == "QuotaExceeded",
                       "429 payload: %r" % (payload,))
                saw_429 = True
                break
        expect(saw_429, "quota never produced a 429")

        status, text = call(base, "GET", "/metrics", token=None)
        expect(status == 200, "metrics status %d" % status)
        expect("# TYPE repro_request_latency_seconds histogram" in text,
               "metrics missing latency histogram")
        expect("repro_quota_rejected" in text,
               "metrics missing quota gauges")

        print("first server OK (401/200/429, session, metrics); "
              "restarting ...", flush=True)
        shutdown(process, base)
    except BaseException:
        process.kill()
        raise

    # Second life: the named session must survive the restart.
    process, base = start_server(workdir, session_dir, csv)
    try:
        status, record = call(base, "GET", "/v2/sessions/smoke-session")
        expect(status == 200 and record["base"]["k"] == 3,
               "resumed session: %d %r" % (status, record))
        status, payload = call(
            base, "POST", "/v2/sessions/smoke-session/step", {"D": 0}
        )
        expect(status == 200 and payload["kind"] == "summary_response"
               and payload["D"] == 0,
               "resumed step: %d %r" % (status, payload))
        shutdown(process, base)
    except BaseException:
        process.kill()
        raise
    print("http_smoke OK: auth, quota, sessions survive restart, "
          "clean shutdown x2")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
