"""Shared infrastructure for the paper-experiment benchmarks.

Every ``bench_*.py`` module regenerates one table or figure of the paper
(see the per-experiment index in DESIGN.md).  Conventions:

* each benchmark prints the figure/table series it reproduces *and* writes
  it to ``results/<experiment>.txt`` so EXPERIMENTS.md can cite the files;
* the pytest-benchmark fixture times a representative kernel of the
  experiment, while the full sweep is measured once with ``Stopwatch``
  (re-running a multi-minute sweep many times would be pointless).
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


class Report:
    """Accumulates lines, prints them, and persists them to results/."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.lines: list[str] = []

    def add(self, text: str = "") -> None:
        self.lines.append(text)

    def table(self, headers: list[str], rows: list[list[object]]) -> None:
        widths = [
            max(len(str(h)), *(len(str(row[i])) for row in rows)) if rows
            else len(str(h))
            for i, h in enumerate(headers)
        ]
        self.add("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
        self.add("  ".join("-" * w for w in widths))
        for row in rows:
            self.add(
                "  ".join(str(c).ljust(w) for c, w in zip(row, widths))
            )

    def flush(self) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = "\n".join(self.lines) + "\n"
        (RESULTS_DIR / ("%s.txt" % self.name)).write_text(text)
        print("\n" + text)


@pytest.fixture
def report(request):
    rep = Report(request.node.name.replace("test_", ""))
    yield rep
    rep.flush()


def measure(fn) -> tuple[object, float]:
    """(result, elapsed seconds) for a single invocation."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start
