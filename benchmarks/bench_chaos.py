"""Chaos benchmark: availability of the serving tier under injected faults.

Boots the real :class:`repro.server.tcp.TCPServer` in-process, arms the
deterministic fault injector over the wire (worker crashes + compute
latency spikes, seeded), and drives the server with a fleet of
closed-loop :class:`repro.server.client.RetryingClient` instances.  Every
response is classified:

``ok``
    a successful analytical response;
``typed``
    a correctly-typed wire error (``PoisonedRequest`` for the
    quarantined crasher, ``DeadlineExceeded``, ``Overloaded``, ...) —
    the server *answered*, with the contract's error shape;
``unavailable``
    anything else: an exception that survived the client's retry
    budget, a malformed response, or a hang.

Availability is ``(ok + typed) / total``; in full mode it must clear
:data:`AVAILABILITY_FLOOR`, no client thread may hang, and the worker
crashes must actually have exercised supervision
(``worker_restarts >= MIN_WORKER_RESTARTS``).  The fault plan makes the
drill deterministic where it matters: the crash rule is
``probability=1, times=2``, so the *first* request to reach a worker
dies twice — one retry, one quarantine — and every later request is
served by restarted workers; the latency rule fires probabilistically
from the seeded RNG.

With faults disarmed the tier must be byte-exact: the golden wire
requests are replayed through stdio and TCP (reusing the load bench's
parity check, golden file included) before and after the chaos run.

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos.py [--smoke]
        [--out PATH] [--clients N] [--rounds N]

CI runs ``--smoke`` (small fleet, no floors): it still arms real
faults, restarts real workers, and fails on any hung client.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))  # for tests.conftest (shared helpers)
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_server_load import check_transport_parity  # noqa: E402
from repro.datasets.loader import synthetic_answer_set  # noqa: E402
from repro.server import (  # noqa: E402
    BackgroundServer,
    LineClient,
    RetryingClient,
    TCPServer,
)
from repro.service import Engine  # noqa: E402

#: Full-mode floors: the fraction of requests answered (success or a
#: correctly-typed wire error) under worker-crash + latency faults, the
#: hung-client budget, and proof that supervision actually fired.
AVAILABILITY_FLOOR = 0.99
MIN_WORKER_RESTARTS = 1

#: The armed fault plan (see the module docstring).  ``times`` bounds
#: the crash budget so the drill converges; the latency spikes ride on
#: the seeded RNG.
FAULT_SPEC = "scheduler.worker=crash:1:0:2;engine.compute=latency:0.2:15"
FAULT_SEED = 1337


def make_engine(smoke: bool) -> Engine:
    n = 256 if smoke else 2048
    engine = Engine()
    engine.register_dataset(
        "left", synthetic_answer_set(n, m=6, domain_size=10, seed=1)
    )
    engine.register_dataset(
        "right", synthetic_answer_set(n, m=6, domain_size=10, seed=2)
    )
    return engine


def make_trace(smoke: bool) -> list[dict]:
    """Distinct requests each closed-loop client cycles through.

    A third of them carry a generous ``deadline_ms`` so the deadline
    plumbing is exercised under load (the deadline itself should not
    fire — a tripped one still counts as a typed answer).
    """
    L = 16 if smoke else 48
    trace: list[dict] = []
    for index, (k, D) in enumerate(
        ((6, 1), (8, 1), (10, 1), (6, 2), (8, 2), (10, 2))
    ):
        request = {
            "schema_version": 2, "kind": "summary",
            "dataset": "left" if index % 2 else "right",
            "k": k, "L": L, "D": D, "algorithm": "hybrid",
        }
        if index % 3 == 0:
            request["deadline_ms"] = 30_000
        trace.append(request)
    return trace


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(q * len(ordered) + 0.5) - 1))
    return ordered[rank]


def run_chaos(smoke: bool, *, clients: int, rounds: int) -> dict:
    engine = make_engine(smoke)
    trace = make_trace(smoke)
    server = TCPServer(
        engine, port=0, shards=2, workers_per_shard=1,
        queue_depth=max(64, clients * len(trace)),
    )
    handle = BackgroundServer(server).start()
    outcomes: dict[str, int] = {"ok": 0, "typed": 0, "unavailable": 0}
    typed_breakdown: dict[str, int] = {}
    failures: list[str] = []
    latencies: list[float] = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def classify(response: dict) -> str:
        if not isinstance(response, dict):
            return "unavailable"
        if response.get("kind") != "error":
            return "ok"
        error_type = response.get("error_type")
        if isinstance(error_type, str) and error_type:
            with lock:
                typed_breakdown[error_type] = (
                    typed_breakdown.get(error_type, 0) + 1
                )
            return "typed"
        return "unavailable"

    def client_loop(worker_id: int) -> None:
        client = RetryingClient(
            handle.host, handle.port, timeout=30,
            attempts=4, base_delay=0.02, max_delay=0.5,
            rng=random.Random(worker_id),
        )
        with client:
            barrier.wait(timeout=60)
            local: list[tuple[str, float]] = []
            for round_index in range(rounds):
                for request in trace:
                    start = time.perf_counter()
                    try:
                        response = client.request(dict(request))
                        outcome = classify(response)
                    except Exception as error:
                        outcome = "unavailable"
                        with lock:
                            failures.append(
                                "client %d round %d: %r"
                                % (worker_id, round_index, error)
                            )
                    local.append((outcome, time.perf_counter() - start))
            with lock:
                for outcome, seconds in local:
                    outcomes[outcome] += 1
                    if outcome == "ok":
                        latencies.append(seconds)

    # Arm the fault plan over the wire — the same admin control an
    # operator (or the chaos CI job) would use.
    with LineClient(handle.host, handle.port) as admin:
        armed = admin.request(
            {"kind": "faults", "arm": FAULT_SPEC, "seed": FAULT_SEED}
        )
        if armed.get("kind") != "faults" or len(armed.get("armed", ())) != 2:
            raise SystemExit("failed to arm fault plan: %r" % armed)

    threads = [
        threading.Thread(target=client_loop, args=(i,))
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=60)
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join(300)
    wall_seconds = time.perf_counter() - wall_start
    hung = sum(1 for thread in threads if thread.is_alive())

    with LineClient(handle.host, handle.port) as admin:
        admin.request({"kind": "faults", "clear": True})
        stats = admin.request({"kind": "stats"})
        ack = admin.request({"kind": "shutdown", "scope": "server"})
    if ack.get("kind") != "shutdown_ack":
        raise SystemExit("server did not acknowledge shutdown: %r" % ack)
    if not handle.stop(timeout=30):
        raise SystemExit("chaos server failed to shut down cleanly")

    total = clients * rounds * len(trace)
    answered = outcomes["ok"] + outcomes["typed"]
    availability = answered / total if total else 0.0
    scheduler = stats["server"]["scheduler"]
    return {
        "clients": clients,
        "rounds": rounds,
        "distinct_requests": len(trace),
        "total_requests": total,
        "wall_seconds": wall_seconds,
        "fault_spec": FAULT_SPEC,
        "fault_seed": FAULT_SEED,
        "outcomes": dict(outcomes),
        "typed_errors": dict(sorted(typed_breakdown.items())),
        "availability": availability,
        "hung_clients": hung,
        "failures": failures[:10],
        "ok_latency": {
            "p50_seconds": _percentile(latencies, 0.50),
            "p95_seconds": _percentile(latencies, 0.95),
            "p99_seconds": _percentile(latencies, 0.99),
        },
        "scheduler": {
            "worker_restarts": scheduler["worker_restarts"],
            "workers_leaked": scheduler["workers_leaked"],
            "crash_retries": scheduler["crash_retries"],
            "poisoned": scheduler["poisoned"],
            "quarantined": scheduler["quarantined"],
            "deadline_shed": scheduler["deadline_shed"],
            "deadline_exceeded": scheduler["deadline_exceeded"],
            "overloaded": scheduler["overloaded"],
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_chaos.json",
        help="output JSON path (default: BENCH_chaos.json at repo root)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fleet, no availability floors (CI mode)",
    )
    parser.add_argument(
        "--clients", type=int, default=None,
        help="closed-loop clients (default: 12 full, 4 smoke)",
    )
    parser.add_argument(
        "--rounds", type=int, default=None,
        help="trace repetitions per client (default: 4 full, 2 smoke)",
    )
    args = parser.parse_args(argv)
    clients = args.clients or (4 if args.smoke else 12)
    rounds = args.rounds or (2 if args.smoke else 4)

    print("checking faults-disarmed transport parity ...", flush=True)
    parity_before = check_transport_parity()

    print(
        "running chaos drill (%d clients x %d rounds%s) ..."
        % (clients, rounds, ", smoke" if args.smoke else ""), flush=True,
    )
    drill = run_chaos(args.smoke, clients=clients, rounds=rounds)
    print(
        "  availability %.4f  (ok %d, typed %d, unavailable %d)  "
        "hung %d  restarts %d"
        % (
            drill["availability"], drill["outcomes"]["ok"],
            drill["outcomes"]["typed"], drill["outcomes"]["unavailable"],
            drill["hung_clients"], drill["scheduler"]["worker_restarts"],
        )
    )

    # Faults are process-global state: prove the drill disarmed cleanly
    # and responses are byte-exact again.
    print("re-checking transport parity after the drill ...", flush=True)
    parity_after = check_transport_parity()

    if drill["hung_clients"]:
        raise SystemExit(
            "%d client thread(s) hung under chaos" % drill["hung_clients"]
        )
    if not args.smoke:
        if drill["availability"] < AVAILABILITY_FLOOR:
            raise SystemExit(
                "availability regression: %.4f < %.2f floor (%r)"
                % (drill["availability"], AVAILABILITY_FLOOR,
                   drill["outcomes"])
            )
        if drill["scheduler"]["worker_restarts"] < MIN_WORKER_RESTARTS:
            raise SystemExit(
                "worker supervision never fired: %d restart(s) < %d"
                % (drill["scheduler"]["worker_restarts"],
                   MIN_WORKER_RESTARTS)
            )

    document = {
        "schema": 1,
        "benchmark": "BENCH_chaos",
        "smoke": args.smoke,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "availability_floor": AVAILABILITY_FLOOR,
        "min_worker_restarts": MIN_WORKER_RESTARTS,
        "transport_parity": {
            "before": parity_before, "after": parity_after,
        },
        "chaos": drill,
    }
    args.out.write_text(json.dumps(document, indent=2) + "\n")
    print("wrote %s" % args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
