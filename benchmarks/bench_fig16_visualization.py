"""Figure 16 + Appendix A.7.3: comparison-visualization placement quality.

For consecutive solution pairs (k, (L1, L2)) in {(5, (8, 10)),
(10, (15, 20)), (20, (30, 40))} at D=2, measures the total weighted
distance (Definition A.3) and the number of band crossings for the
optimized (bipartite-matching) ordering versus the default by-value
ordering — plus the matching-vs-brute-force timing comparison the paper
reports (matching < 10 ms, brute force > 2 s; brute force is run at k=7
here, 5040 permutations, to stay in laptop budget).
"""

from __future__ import annotations

from repro.core.problem import summarize
from repro.datasets.loader import synthetic_answer_set
from repro.viz.comparison import build_comparison, overlap_matrix
from repro.viz.placement import (
    brute_force_ordering,
    default_ordering,
    optimal_ordering,
    total_distance,
)

from conftest import measure

SETTINGS = ((5, (8, 10)), (10, (15, 20)), (20, (30, 40)))
D = 2


def _answers():
    return synthetic_answer_set(2087, m=6, domain_size=6, seed=2)


def test_fig16_placement_quality(report, benchmark):
    answers = _answers()
    report.add("Figure 16: matched vs default visualization "
               "(D=%d, N=%d)" % (D, answers.n))
    distance_rows = []
    crossing_rows = []
    view = None
    for k, (l_old, l_new) in SETTINGS:
        old = summarize(answers, k=k, L=l_old, D=D)
        new = summarize(answers, k=k, L=l_new, D=D)
        view = build_comparison(old, new, answers, L=l_new)
        distance_rows.append(
            [k, view.matched_distance, view.default_distance]
        )
        crossing_rows.append(
            [k, view.matched_crossings, view.default_crossings]
        )
        assert view.matched_distance <= view.default_distance
    report.add("\n(a) total weighted distance")
    report.table(["clusters k", "matched viz", "default viz"], distance_rows)
    report.add("\n(b) crossings among bands")
    report.table(["clusters k", "matched viz", "default viz"], crossing_rows)
    assert view is not None
    benchmark(
        lambda: optimal_ordering(
            view.overlap, default_ordering(len(view.old_boxes))
        )
    )


def test_a73_matching_vs_brute_force_timing(report, benchmark):
    answers = _answers()
    report.add("Appendix A.7.3: bipartite matching vs brute-force "
               "placement (k=7, L=15 -> 20, D=%d)" % D)
    old = summarize(answers, k=7, L=15, D=D)
    new = summarize(answers, k=7, L=20, D=D)
    overlap = overlap_matrix(old, new)
    pa = default_ordering(len(old.clusters))
    matched, match_seconds = measure(lambda: optimal_ordering(overlap, pa))
    brute, brute_seconds = measure(
        lambda: brute_force_ordering(overlap, pa)
    )
    assert total_distance(overlap, pa, matched) == total_distance(
        overlap, pa, brute
    ), "matching must be exactly optimal"
    report.table(
        ["method", "seconds", "total distance"],
        [
            ["bipartite matching", "%.4f" % match_seconds,
             total_distance(overlap, pa, matched)],
            ["brute force (%d perms)" % _factorial(len(new.clusters)),
             "%.4f" % brute_seconds,
             total_distance(overlap, pa, brute)],
        ],
    )
    report.add("speedup: %.0fx" % (brute_seconds / max(match_seconds, 1e-9)))
    benchmark(lambda: optimal_ordering(overlap, pa))


def _factorial(n: int) -> int:
    result = 1
    for i in range(2, n + 1):
        result *= i
    return result
