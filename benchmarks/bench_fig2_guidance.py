"""Figure 2 + Section 7.2 'timing for guidance visualization'.

Regenerates the parameter-selection view: average solution value against k,
one series per D, for a fixed L — and times its generation for different
attribute counts m, which the paper reports at 20-40 ms for m in [4, 10]
with N = 2087 (interactive budget).
"""

from __future__ import annotations

from repro.core.semilattice import ClusterPool
from repro.datasets.loader import synthetic_answer_set
from repro.interactive.guidance import build_guidance_view
from repro.interactive.precompute import SolutionStore

from conftest import measure

L = 15
K_RANGE = (2, 15)
D_VALUES = (1, 2, 3, 4)


def test_fig2_guidance_view(report, benchmark):
    answers = synthetic_answer_set(2087, m=8, domain_size=6, seed=1)
    pool = ClusterPool(answers, L=L)
    store = SolutionStore(pool, K_RANGE, D_VALUES)
    view = build_guidance_view(store)
    report.add("Figure 2: value of solutions vs k, one line per D "
               "(L=%d, N=%d)" % (L, answers.n))
    rows = []
    for k in range(K_RANGE[0], K_RANGE[1] + 1):
        rows.append(
            [k] + ["%.4f" % store.objective(k, D) for D in D_VALUES]
        )
    report.table(["k"] + ["D=%d" % D for D in D_VALUES], rows)
    report.add("")
    report.add(view.render_ascii(width=50, height=12))
    for D in D_VALUES:
        report.add(
            "D=%d: knees at k=%s, flat regions %s"
            % (D, view.knee_points(D), view.flat_regions(D))
        )
    report.add("overlapping D bundles: %s"
               % view.overlapping_distance_bundles())
    # The retrieval+assembly path is the interactive kernel.
    benchmark(lambda: build_guidance_view(store))


def test_fig2_generation_time_vs_m(report, benchmark):
    report.add("Section 7.2: guidance view generation time vs m (N=2087)")
    rows = []
    store = None
    for m in (4, 6, 8, 10):
        # Small domains keep D binding, but m=4 needs domain^m >= N.
        answers = synthetic_answer_set(
            2087, m=m, domain_size=12 if m <= 4 else 6, seed=1
        )
        pool, init_seconds = measure(lambda: ClusterPool(answers, L=L))
        store, sweep_seconds = measure(
            lambda: SolutionStore(pool, K_RANGE, D_VALUES)
        )
        _, view_seconds = measure(lambda: build_guidance_view(store))
        rows.append([
            m,
            "%.1f" % (init_seconds * 1e3),
            "%.1f" % (sweep_seconds * 1e3),
            "%.2f" % (view_seconds * 1e3),
        ])
    report.table(["m", "init (ms)", "sweep (ms)", "view (ms)"], rows)
    assert store is not None
    benchmark(lambda: build_guidance_view(store))
