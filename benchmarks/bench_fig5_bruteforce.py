"""Figure 5: comparison with brute force (runtime and value).

Paper setup: MovieLens query answers, L=5, D=3, k in {2, 3, 4}; algorithms
BF, Bottom-Up, Fixed-Order, Hybrid, Random- and K-Means-Fixed-Order, plus
the trivial lower bound.  Expected shape: brute force is orders of
magnitude slower and only marginally better in value; the randomized
variants do not beat plain Fixed-Order and add variance (Section 7.1).
"""

from __future__ import annotations

import statistics

from repro.core.bottom_up import bottom_up
from repro.core.brute_force import brute_force, lower_bound
from repro.core.fixed_order import (
    fixed_order,
    kmeans_fixed_order,
    random_fixed_order,
)
from repro.core.hybrid import hybrid
from repro.core.semilattice import ClusterPool
from repro.datasets.loader import movielens_answer_set

from conftest import measure

L, D = 5, 3
K_VALUES = (2, 3, 4)
RANDOM_RUNS = 20


def test_fig5_brute_force_comparison(report, benchmark):
    answers = movielens_answer_set(m=4, having_count_gt=50)
    pool = ClusterPool(answers, L=L)
    report.add("Figure 5: comparison with brute force "
               "(n=%d, L=%d, D=%d)" % (answers.n, L, D))
    rows_time: list[list[object]] = []
    rows_value: list[list[object]] = []
    for k in K_VALUES:
        bf, bf_seconds = measure(lambda: brute_force(pool, k, D))
        bu, bu_seconds = measure(lambda: bottom_up(pool, k, D))
        fo, fo_seconds = measure(lambda: fixed_order(pool, k, D))
        hy, hy_seconds = measure(lambda: hybrid(pool, k, D))
        random_values = []
        _, rnd_seconds = measure(
            lambda: random_fixed_order(pool, k, D, seed=0)
        )
        for seed in range(RANDOM_RUNS):
            random_values.append(
                random_fixed_order(pool, k, D, seed=seed).avg
            )
        kmeans_values = []
        _, km_seconds = measure(
            lambda: kmeans_fixed_order(pool, k, D, seed=0)
        )
        for seed in range(RANDOM_RUNS):
            kmeans_values.append(
                kmeans_fixed_order(pool, k, D, seed=seed).avg
            )
        floor = lower_bound(pool).avg
        rows_time.append([
            k,
            "%.3f" % (bf_seconds * 1e3),
            "%.3f" % (bu_seconds * 1e3),
            "%.3f" % (fo_seconds * 1e3),
            "%.3f" % (hy_seconds * 1e3),
            "%.3f" % (rnd_seconds * 1e3),
            "%.3f" % (km_seconds * 1e3),
        ])
        rows_value.append([
            k,
            "%.4f" % bf.avg,
            "%.4f" % bu.avg,
            "%.4f" % fo.avg,
            "%.4f" % hy.avg,
            "%.4f+-%.3f" % (
                statistics.mean(random_values),
                statistics.pstdev(random_values),
            ),
            "%.4f+-%.3f" % (
                statistics.mean(kmeans_values),
                statistics.pstdev(kmeans_values),
            ),
            "%.4f" % floor,
        ])
        # Exactness sanity: nothing may beat brute force.
        for value in (bu.avg, fo.avg, hy.avg, *random_values, *kmeans_values):
            assert value <= bf.avg + 1e-9
    report.add("\n(a) runtime in ms vs k")
    report.table(
        ["k", "BF", "Bottom-Up", "Fixed-Order", "Hybrid", "Random", "K-Means"],
        rows_time,
    )
    report.add("\n(b) average value vs k")
    report.table(
        ["k", "BF", "Bottom-Up", "Fixed-Order", "Hybrid", "Random",
         "K-Means", "LowerBound"],
        rows_value,
    )
    benchmark(lambda: hybrid(pool, 3, D))
