"""Ablations for the design choices DESIGN.md calls out.

Not a numbered paper figure, but each is a claim in the text:

* Section 5.1: the two Bottom-Up variants (level-(D-1) seeding; merging by
  the pair's own LCA average) are "comparable or worse" than the base
  algorithm in quality and efficiency.
* Section 5.3: Hybrid's pool factor c trades Fixed-Order speed against
  Bottom-Up quality.
* Footnote 5: the Min-Size objective misses global high-valued properties
  — it yields fewer redundant elements but a lower Max-Avg value.
"""

from __future__ import annotations

from repro.core.bottom_up import (
    bottom_up,
    bottom_up_level_start,
    bottom_up_pairwise_avg,
)
from repro.core.hybrid import hybrid
from repro.core.objectives import min_size, min_size_greedy
from repro.core.semilattice import ClusterPool
from repro.datasets.loader import movielens_answer_set

from conftest import measure

K, L, D = 8, 30, 2


def _pool():
    answers = movielens_answer_set(m=8, having_count_gt=10)
    return answers, ClusterPool(answers, L=L)


def test_ablation_bottom_up_variants(report, benchmark):
    answers, pool = _pool()
    report.add("Ablation: Bottom-Up variants (Section 5.1; k=%d, L=%d, "
               "D=%d, N=%d)" % (K, L, D, answers.n))
    rows = []
    for name, algorithm in (
        ("base Bottom-Up", bottom_up),
        ("level-(D-1) seeding", bottom_up_level_start),
        ("merge by LCA avg", bottom_up_pairwise_avg),
    ):
        solution, seconds = measure(lambda: algorithm(pool, K, D))
        rows.append([name, "%.4f" % solution.avg,
                     "%.1f" % (seconds * 1e3), solution.size])
    report.table(["variant", "value", "runtime (ms)", "clusters"], rows)
    base_value = float(rows[0][1])
    for row in rows[1:]:
        assert float(row[1]) <= base_value + 0.15, (
            "variants should be comparable or worse (Section 5.1)"
        )
    benchmark(lambda: bottom_up(pool, K, D))


def test_ablation_hybrid_pool_factor(report, benchmark):
    answers, pool = _pool()
    report.add("Ablation: Hybrid pool factor c (Section 5.3; k=%d, L=%d, "
               "D=%d)" % (K, L, D))
    rows = []
    for factor in (1, 2, 3, 4):
        solution, seconds = measure(
            lambda: hybrid(pool, K, D, pool_factor=factor)
        )
        rows.append([factor, "%.4f" % solution.avg,
                     "%.1f" % (seconds * 1e3)])
    report.table(["c", "value", "runtime (ms)"], rows)
    benchmark(lambda: hybrid(pool, K, D, pool_factor=2))


def test_ablation_min_size_objective(report, benchmark):
    answers, pool = _pool()
    report.add("Ablation: Max-Avg vs Min-Size objective (footnote 5; "
               "k=%d, L=%d, D=%d)" % (K, L, D))
    max_avg_solution, max_avg_seconds = measure(
        lambda: bottom_up(pool, K, D)
    )
    min_size_solution, min_size_seconds = measure(
        lambda: min_size_greedy(pool, K, D)
    )
    rows = [
        ["Max-Avg (paper)", "%.4f" % max_avg_solution.avg,
         min_size(max_avg_solution, L), "%.1f" % (max_avg_seconds * 1e3)],
        ["Min-Size", "%.4f" % min_size_solution.avg,
         min_size(min_size_solution, L), "%.1f" % (min_size_seconds * 1e3)],
    ]
    report.table(
        ["objective", "avg value", "redundant elements", "runtime (ms)"],
        rows,
    )
    # Each objective must win its own metric.
    assert max_avg_solution.avg >= min_size_solution.avg - 1e-9
    assert min_size(min_size_solution, L) <= min_size(max_avg_solution, L)
    benchmark(lambda: min_size_greedy(pool, K, D))
