"""Service-layer cache: cold vs. warm Engine request latency.

The engine's claim (and the paper's serving model, Section 6 / Figure 7):
the first request over a (dataset, L) pays initialization, every later one
is answered from shared cached state at interactive speed.  This benchmark
pins that down so cache regressions (a key that stops matching, an LRU
bound that thrashes, an accidental rebuild) show up as a collapsed
warm/cold ratio or a sunk hit rate.

Reported series: per-request latency cold (first submission) and warm
(resubmission), the speedup, and the engine's pool/store hit rates over a
simulated multi-user exploration trace.
"""

from __future__ import annotations

from repro.datasets.loader import PAPER_N_DEFAULT, synthetic_answer_set
from repro.service import Engine, ExploreRequest, SummaryRequest

from conftest import measure

L_VALUES = (50, 100, 200)
K, D = 10, 2


def _engine(n=PAPER_N_DEFAULT):
    engine = Engine()
    engine.register_dataset(
        "synthetic", synthetic_answer_set(n, m=8, domain_size=6, seed=1)
    )
    return engine


def test_cold_vs_warm_summary(report, benchmark):
    engine = _engine()
    report.add("Service cache: cold vs warm SummaryRequest latency "
               "(N=%d, k=%d, D=%d)" % (PAPER_N_DEFAULT, K, D))
    rows = []
    for L in L_VALUES:
        request = SummaryRequest(dataset="synthetic", k=K, L=L, D=D)
        cold, cold_seconds = measure(lambda: engine.submit(request))
        warm, warm_seconds = measure(lambda: engine.submit(request))
        assert cold.cache_hit is False
        assert warm.cache_hit is True
        rows.append([
            L,
            "%.1f" % (cold_seconds * 1e3),
            "%.1f" % (warm_seconds * 1e3),
            "%.0fx" % (cold_seconds / max(warm_seconds, 1e-9)),
        ])
    report.table(["L", "cold (ms)", "warm (ms)", "speedup"], rows)
    warm_request = SummaryRequest(dataset="synthetic", k=K, L=L_VALUES[0],
                                  D=D)
    benchmark(lambda: engine.submit(warm_request))


def test_cold_vs_warm_explore(report, benchmark):
    engine = _engine()
    L, k_range, d_values = 100, (2, 20), (1, 2, 3)
    report.add("Service cache: ExploreRequest store build vs retrieval "
               "(L=%d, k in %s, D in %s)" % (L, list(k_range),
                                             list(d_values)))
    request = ExploreRequest(dataset="synthetic", k=10, L=L, D=2,
                             k_range=k_range, d_values=d_values)
    cold, cold_seconds = measure(lambda: engine.submit(request))
    warm, warm_seconds = measure(lambda: engine.submit(request))
    assert cold.cache_hit is False and warm.cache_hit is True
    report.table(
        ["phase", "latency (ms)"],
        [["cold (pool + sweep)", "%.1f" % (cold_seconds * 1e3)],
         ["warm (retrieval)", "%.2f" % (warm_seconds * 1e3)]],
    )
    benchmark(lambda: engine.submit(request))


def test_multi_user_trace_hit_rate(report, benchmark):
    """A Figure 7b-style trace: several users tweaking (k, L, D)."""
    engine = _engine()
    trace = [
        (10, 100, 2), (12, 100, 2), (10, 100, 3),   # user 1 tweaks k, D
        (10, 100, 2), (8, 100, 2),                  # user 2, same L
        (10, 200, 2), (12, 200, 2),                 # user 3, bigger L
        (10, 100, 2),                               # user 4 repeats user 1
    ]
    _, total_seconds = measure(lambda: [
        engine.submit(SummaryRequest(dataset="synthetic", k=k, L=L, D=D))
        for k, L, D in trace
    ])
    stats = engine.stats()
    report.add("Service cache: %d-request multi-user trace in %.1f ms"
               % (len(trace), total_seconds * 1e3))
    report.table(
        ["metric", "value"],
        [["pool builds", stats.pools.misses],
         ["pool hits", stats.pools.hits],
         ["pool hit rate", "%.2f" % stats.pools.hit_rate],
         ["requests", stats.requests]],
    )
    assert stats.pools.misses == 2  # only L=100 and L=200 were built
    benchmark(lambda: engine.submit(
        SummaryRequest(dataset="synthetic", k=11, L=100, D=2)
    ))
