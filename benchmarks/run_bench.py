"""Machine-readable benchmark runner: seeds the perf trajectory.

Unlike the ``bench_*.py`` pytest modules (which regenerate the paper's
figures as human-readable tables), this is a plain script that executes the
core workloads — the Figure 5 brute-force comparison, the Figure 8
initialization/delta ablations, the bitset-vs-python kernel comparison at
n >= 10k, and the service cold-vs-warm cache path — and writes one JSON
document (default: ``BENCH_core.json`` at the repository root) with
wall-clock seconds, workload parameters (n/m/L/k/D), and kernel labels.
CI runs it with ``--smoke`` (scaled-down sizes, no ratio thresholds) to
catch breakage; the full run records the numbers cited in README/ROADMAP.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [--smoke] [--out PATH]
                                                  [--workloads NAME ...]

The kernel-comparison workload also cross-checks that both kernels return
*identical* solutions, and (full mode) fails loudly if the bitset kernel is
less than 5x faster than the pure-Python kernel — the acceptance bar this
runner exists to keep honest.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.bottom_up import bottom_up  # noqa: E402
from repro.core.brute_force import brute_force  # noqa: E402
from repro.core.fixed_order import fixed_order  # noqa: E402
from repro.core.hybrid import hybrid  # noqa: E402
from repro.core.semilattice import ClusterPool  # noqa: E402
from repro.datasets.loader import (  # noqa: E402
    movielens_answer_set,
    synthetic_answer_set,
)
from repro.service import Engine, ExploreRequest, SummaryRequest  # noqa: E402

#: Minimum acceptable bitset-over-python speedup on the kernel workload.
KERNEL_SPEEDUP_FLOOR = 5.0


def best_of(fn, repeats: int = 3) -> tuple[object, float]:
    """(last result, best wall-clock seconds) over *repeats* invocations."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def bench_fig5_bruteforce(smoke: bool) -> dict:
    """Figure 5 workload: exact search vs the greedy family (small n)."""
    answers = movielens_answer_set(m=4, having_count_gt=50)
    L, D, k = 5, 3, 3
    pool = ClusterPool(answers, L=L)
    entries = []
    solutions = {}
    for label, fn in (
        ("brute-force", lambda: brute_force(pool, k, D)),
        ("bottom-up", lambda: bottom_up(pool, k, D)),
        ("fixed-order", lambda: fixed_order(pool, k, D)),
        ("hybrid", lambda: hybrid(pool, k, D)),
    ):
        solution, seconds = best_of(fn, repeats=1 if smoke else 3)
        solutions[label] = solution
        entries.append(
            {"label": label, "kernel": "bitset", "seconds": seconds}
        )
    # Exactness sanity: no greedy may beat the exact optimum.
    exact = solutions["brute-force"].avg
    for label, solution in solutions.items():
        assert solution.avg <= exact + 1e-9, label
    return {
        "name": "fig5_bruteforce",
        "params": {"n": answers.n, "m": answers.m, "L": L, "k": k, "D": D},
        "entries": entries,
    }


def bench_fig8a_init(smoke: bool) -> dict:
    """Figure 8a workload: optimized vs naive cluster generation/mapping."""
    n = 500 if smoke else 2087
    L = 20 if smoke else 60
    answers = synthetic_answer_set(n, m=6, domain_size=8, seed=1)
    optimized, fast = best_of(
        lambda: ClusterPool(answers, L=L, strategy="eager"), repeats=1
    )
    naive, slow = best_of(
        lambda: ClusterPool(answers, L=L, strategy="naive"), repeats=1
    )
    sample = list(optimized.patterns())[:: max(1, len(optimized) // 25)]
    for pattern in sample:
        assert optimized.coverage(pattern) == naive.coverage(pattern)
    return {
        "name": "fig8a_init",
        "params": {"n": n, "m": 6, "L": L},
        "entries": [
            {"label": "eager-mapping", "kernel": "bitset", "seconds": fast},
            {"label": "naive-mapping", "kernel": "bitset", "seconds": slow},
        ],
        "speedup": slow / fast,
    }


def bench_fig8b_delta(smoke: bool) -> dict:
    """Figure 8b workload: delta judgment vs naive re-evaluation."""
    n = 500 if smoke else 2087
    L = 20 if smoke else 60
    k, D = 10, 2
    answers = synthetic_answer_set(n, m=6, domain_size=8, seed=1)
    pool = ClusterPool(answers, L=L)
    with_delta, fast = best_of(
        lambda: bottom_up(pool, k, D, use_delta=True),
        repeats=1 if smoke else 3,
    )
    without_delta, slow = best_of(
        lambda: bottom_up(pool, k, D, use_delta=False), repeats=1
    )
    assert with_delta.patterns() == without_delta.patterns()
    return {
        "name": "fig8b_delta",
        "params": {"n": n, "m": 6, "L": L, "k": k, "D": D},
        "entries": [
            {"label": "with-delta", "kernel": "bitset", "seconds": fast},
            {"label": "without-delta", "kernel": "bitset", "seconds": slow},
        ],
        "speedup": slow / fast,
    }


def bench_kernel_core(smoke: bool) -> dict:
    """The acceptance workload: bitset vs python kernel, n >= 10k, L ~ 100.

    Runs Bottom-Up (the Figure 8b algorithm) on both kernels, checks the
    solutions agree (identical patterns, or equal objectives to ~1 ulp on
    an exact tie), and reports the speedup.  In full mode a speedup below
    :data:`KERNEL_SPEEDUP_FLOOR` is an error.
    """
    n = 2000 if smoke else 10240
    L = 40 if smoke else 100
    k, D = 20, 2
    answers = synthetic_answer_set(n, m=6, domain_size=10, seed=1)
    pool = ClusterPool(answers, L=L)
    bitset_solution, bitset_seconds = best_of(
        lambda: bottom_up(pool, k, D, kernel="bitset"),
        repeats=1 if smoke else 3,
    )
    python_solution, python_seconds = best_of(
        lambda: bottom_up(pool, k, D, kernel="python"),
        repeats=1 if smoke else 3,
    )
    # The kernels accumulate float sums in different orders, so on general
    # float values a mathematically exact tie can break differently at the
    # last ulp.  Identical patterns are the expected outcome (and what the
    # dyadic-valued property tests prove); if they ever differ here, the
    # objectives must still agree to ~1 ulp or something is actually wrong.
    identical = bitset_solution.patterns() == python_solution.patterns()
    if not identical:
        assert abs(bitset_solution.avg - python_solution.avg) < 1e-9, (
            "kernel divergence beyond float-tie noise: bitset avg %r vs "
            "python avg %r"
            % (bitset_solution.avg, python_solution.avg)
        )
    _, hybrid_bitset = best_of(
        lambda: hybrid(pool, k, D, kernel="bitset"), repeats=1 if smoke else 3
    )
    _, hybrid_python = best_of(
        lambda: hybrid(pool, k, D, kernel="python"), repeats=1 if smoke else 3
    )
    speedup = python_seconds / bitset_seconds
    if not smoke and speedup < KERNEL_SPEEDUP_FLOOR:
        raise SystemExit(
            "kernel speedup regression: %.2fx < %.1fx floor "
            "(bitset %.3fs, python %.3fs)"
            % (speedup, KERNEL_SPEEDUP_FLOOR, bitset_seconds, python_seconds)
        )
    return {
        "name": "fig8_kernel_core",
        "params": {"n": n, "m": 6, "L": L, "k": k, "D": D},
        "entries": [
            {"label": "bottom-up", "kernel": "bitset",
             "seconds": bitset_seconds},
            {"label": "bottom-up", "kernel": "python",
             "seconds": python_seconds},
            {"label": "hybrid", "kernel": "bitset",
             "seconds": hybrid_bitset},
            {"label": "hybrid", "kernel": "python",
             "seconds": hybrid_python},
        ],
        "speedup": speedup,
        "solutions_identical": identical,
    }


def bench_service_cache(smoke: bool) -> dict:
    """Cold vs warm engine requests (shared pools/stores across sessions)."""
    n = 500 if smoke else 2087
    L = 20 if smoke else 40
    answers = synthetic_answer_set(n, m=6, domain_size=8, seed=2)
    engine = Engine()
    engine.register_dataset("bench", answers)
    summary = SummaryRequest(dataset="bench", k=8, L=L, D=2,
                             algorithm="hybrid")
    start = time.perf_counter()
    cold = engine.submit(summary)
    cold_seconds = time.perf_counter() - start
    start = time.perf_counter()
    warm = engine.submit(summary)
    warm_seconds = time.perf_counter() - start
    assert cold.cache_hit is False and warm.cache_hit is True
    explore = ExploreRequest(dataset="bench", k=6, L=L, D=2,
                             k_range=(4, 10), d_values=(1, 2))
    start = time.perf_counter()
    explore_cold = engine.submit(explore)
    explore_cold_seconds = time.perf_counter() - start
    start = time.perf_counter()
    explore_warm = engine.submit(explore)
    explore_warm_seconds = time.perf_counter() - start
    assert explore_cold.cache_hit is False and explore_warm.cache_hit is True
    return {
        "name": "service_cache",
        "params": {"n": n, "m": 6, "L": L},
        "entries": [
            {"label": "summary-cold", "kernel": cold.kernel,
             "seconds": cold_seconds},
            {"label": "summary-warm", "kernel": warm.kernel,
             "seconds": warm_seconds},
            {"label": "explore-cold", "kernel": explore_cold.kernel,
             "seconds": explore_cold_seconds},
            {"label": "explore-warm", "kernel": explore_warm.kernel,
             "seconds": explore_warm_seconds},
        ],
        "speedup": explore_cold_seconds / max(explore_warm_seconds, 1e-9),
    }


WORKLOADS = {
    "fig5_bruteforce": bench_fig5_bruteforce,
    "fig8a_init": bench_fig8a_init,
    "fig8b_delta": bench_fig8b_delta,
    "fig8_kernel_core": bench_kernel_core,
    "service_cache": bench_service_cache,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_core.json",
        help="output JSON path (default: BENCH_core.json at the repo root)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="scaled-down sizes, no speedup thresholds (CI smoke mode)",
    )
    parser.add_argument(
        "--workloads", nargs="*", choices=sorted(WORKLOADS),
        help="subset of workloads to run (default: all)",
    )
    args = parser.parse_args(argv)
    names = args.workloads or sorted(WORKLOADS)
    results = []
    for name in names:
        print("running %s%s ..." % (name, " (smoke)" if args.smoke else ""),
              flush=True)
        workload = WORKLOADS[name](args.smoke)
        for entry in workload["entries"]:
            print("  %-14s %-7s %8.3f s" % (
                entry["label"], entry["kernel"], entry["seconds"]))
        if "speedup" in workload:
            print("  speedup: %.1fx" % workload["speedup"])
        results.append(workload)
    document = {
        "schema": 1,
        "benchmark": "BENCH_core",
        "smoke": args.smoke,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "workloads": results,
    }
    kernel = next(
        (w for w in results if w["name"] == "fig8_kernel_core"), None
    )
    if kernel is not None:
        document["kernel_speedup"] = kernel["speedup"]
    args.out.write_text(json.dumps(document, indent=2) + "\n")
    print("wrote %s" % args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
