"""Machine-readable benchmark runner: seeds the perf trajectory.

Unlike the ``bench_*.py`` pytest modules (which regenerate the paper's
figures as human-readable tables), this is a plain script that executes the
core workloads — the Figure 5 brute-force comparison, the Figure 8
initialization/delta ablations, the bitset-vs-python kernel comparison at
n >= 10k, and the service cold-vs-warm cache path — and writes one JSON
document (default: ``BENCH_core.json`` at the repository root) with
wall-clock seconds, workload parameters (n/m/L/k/D), and kernel labels.
CI runs it with ``--smoke`` (scaled-down sizes, no ratio thresholds) to
catch breakage; the full run records the numbers cited in README/ROADMAP.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [--smoke] [--out PATH]
                                                  [--workloads NAME ...]
                                                  [--profile]

The kernel-comparison workloads also cross-check that the kernels return
*identical* solutions, and (full mode) fail loudly when a committed floor
is broken: bitset >= 5x python on the n=10k workload, dense+numpy >= 3x
bitset on the n=10^6 scaling workload, and the dense array fallback >=
0.9x bitset everywhere — the acceptance bars this runner exists to keep
honest.  ``--profile`` additionally cProfiles each workload into
``results/profile_<name>.{pstats,txt}`` so optimization decisions stay
profile-driven.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import dense  # noqa: E402
from repro.core.bottom_up import bottom_up  # noqa: E402
from repro.core.brute_force import brute_force  # noqa: E402
from repro.core.fixed_order import fixed_order  # noqa: E402
from repro.core.hybrid import hybrid  # noqa: E402
from repro.core.merge import MergeEngine  # noqa: E402
from repro.core.semilattice import ClusterPool  # noqa: E402
from repro.datasets.loader import (  # noqa: E402
    movielens_answer_set,
    synthetic_answer_set,
)
from repro.service import Engine, ExploreRequest, SummaryRequest  # noqa: E402

#: Minimum acceptable bitset-over-python speedup on the kernel workload.
KERNEL_SPEEDUP_FLOOR = 5.0

#: Floors for the rounds-vs-groups workload (enforced in full mode at
#: L >= 100, where the lazy heap argmax must beat the exhaustive scan).
#: The marginal-evaluation ratio is deterministic (identical trajectories
#: every run), so its floor is the primary contract.  Wall-clock carries
#: machine noise and the per-L effect at L=100/200 is only a few percent,
#: so each L gets a parity-within-noise floor while the *peak* speedup
#: across the L sweep (1.8x at L=400 on the committed run) must clear a
#: real margin.
HEAP_EVAL_RATIO_FLOOR = 2.5
HEAP_ARGMAX_SPEEDUP_FLOOR = 0.95
HEAP_ARGMAX_PEAK_FLOOR = 1.25

#: Floors for the dense_scaling workload (enforced in full mode).  The
#: dense kernel with numpy must beat the bitset kernel by this factor on
#: the mask-sum-dominated warm run at n = DENSE_FLOOR_N; the pure-stdlib
#: array fallback must never regress below DENSE_FALLBACK_SPEEDUP_FLOOR
#: of bitset at *any* measured n (it routes the packed blocks through
#: int word-parallel ops, so parity is the design point).
DENSE_NUMPY_SPEEDUP_FLOOR = 3.0
DENSE_FALLBACK_SPEEDUP_FLOOR = 0.9
DENSE_FLOOR_N = 1_000_000


def best_of(fn, repeats: int = 3) -> tuple[object, float]:
    """(last result, best wall-clock seconds) over *repeats* invocations."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def bench_fig5_bruteforce(smoke: bool) -> dict:
    """Figure 5 workload: exact search vs the greedy family (small n)."""
    answers = movielens_answer_set(m=4, having_count_gt=50)
    L, D, k = 5, 3, 3
    pool = ClusterPool(answers, L=L)
    entries = []
    solutions = {}
    for label, fn in (
        ("brute-force", lambda: brute_force(pool, k, D)),
        ("bottom-up", lambda: bottom_up(pool, k, D)),
        ("fixed-order", lambda: fixed_order(pool, k, D)),
        ("hybrid", lambda: hybrid(pool, k, D)),
    ):
        solution, seconds = best_of(fn, repeats=1 if smoke else 3)
        solutions[label] = solution
        entries.append(
            {"label": label, "kernel": "bitset", "seconds": seconds}
        )
    # Exactness sanity: no greedy may beat the exact optimum.
    exact = solutions["brute-force"].avg
    for label, solution in solutions.items():
        assert solution.avg <= exact + 1e-9, label
    return {
        "name": "fig5_bruteforce",
        "params": {"n": answers.n, "m": answers.m, "L": L, "k": k, "D": D},
        "entries": entries,
    }


def bench_fig8a_init(smoke: bool) -> dict:
    """Figure 8a workload: optimized vs naive cluster generation/mapping."""
    n = 500 if smoke else 2087
    L = 20 if smoke else 60
    answers = synthetic_answer_set(n, m=6, domain_size=8, seed=1)
    optimized, fast = best_of(
        lambda: ClusterPool(answers, L=L, strategy="eager"), repeats=1
    )
    naive, slow = best_of(
        lambda: ClusterPool(answers, L=L, strategy="naive"), repeats=1
    )
    sample = list(optimized.patterns())[:: max(1, len(optimized) // 25)]
    for pattern in sample:
        assert optimized.coverage(pattern) == naive.coverage(pattern)
    return {
        "name": "fig8a_init",
        "params": {"n": n, "m": 6, "L": L},
        "entries": [
            {"label": "eager-mapping", "kernel": "bitset", "seconds": fast},
            {"label": "naive-mapping", "kernel": "bitset", "seconds": slow},
        ],
        "speedup": slow / fast,
    }


def bench_fig8b_delta(smoke: bool) -> dict:
    """Figure 8b workload: delta judgment vs naive re-evaluation."""
    n = 500 if smoke else 2087
    L = 20 if smoke else 60
    k, D = 10, 2
    answers = synthetic_answer_set(n, m=6, domain_size=8, seed=1)
    pool = ClusterPool(answers, L=L)
    # Pin argmax="scan" so this ablation isolates delta judgment: the lazy
    # heap (the rounds_vs_groups workload's axis) would otherwise mask the
    # cost of naive re-evaluation by evaluating only the frontier.
    with_delta, fast = best_of(
        lambda: bottom_up(pool, k, D, use_delta=True, argmax="scan"),
        repeats=1 if smoke else 3,
    )
    without_delta, slow = best_of(
        lambda: bottom_up(pool, k, D, use_delta=False, argmax="scan"),
        repeats=1,
    )
    assert with_delta.patterns() == without_delta.patterns()
    return {
        "name": "fig8b_delta",
        "params": {"n": n, "m": 6, "L": L, "k": k, "D": D},
        "entries": [
            {"label": "with-delta", "kernel": "bitset", "seconds": fast},
            {"label": "without-delta", "kernel": "bitset", "seconds": slow},
        ],
        "speedup": slow / fast,
    }


def bench_kernel_core(smoke: bool) -> dict:
    """The acceptance workload: bitset vs python kernel, n >= 10k, L ~ 100.

    Runs Bottom-Up (the Figure 8b algorithm) on both kernels, checks the
    solutions agree (identical patterns, or equal objectives to ~1 ulp on
    an exact tie), and reports the speedup.  In full mode a speedup below
    :data:`KERNEL_SPEEDUP_FLOOR` is an error.
    """
    n = 2000 if smoke else 10240
    L = 40 if smoke else 100
    k, D = 20, 2
    answers = synthetic_answer_set(n, m=6, domain_size=10, seed=1)
    pool = ClusterPool(answers, L=L)
    bitset_solution, bitset_seconds = best_of(
        lambda: bottom_up(pool, k, D, kernel="bitset"),
        repeats=1 if smoke else 3,
    )
    python_solution, python_seconds = best_of(
        lambda: bottom_up(pool, k, D, kernel="python"),
        repeats=1 if smoke else 3,
    )
    # The kernels accumulate float sums in different orders, so on general
    # float values a mathematically exact tie can break differently at the
    # last ulp.  Identical patterns are the expected outcome (and what the
    # dyadic-valued property tests prove); if they ever differ here, the
    # objectives must still agree to ~1 ulp or something is actually wrong.
    identical = bitset_solution.patterns() == python_solution.patterns()
    if not identical:
        assert abs(bitset_solution.avg - python_solution.avg) < 1e-9, (
            "kernel divergence beyond float-tie noise: bitset avg %r vs "
            "python avg %r"
            % (bitset_solution.avg, python_solution.avg)
        )
    _, hybrid_bitset = best_of(
        lambda: hybrid(pool, k, D, kernel="bitset"), repeats=1 if smoke else 3
    )
    _, hybrid_python = best_of(
        lambda: hybrid(pool, k, D, kernel="python"), repeats=1 if smoke else 3
    )
    speedup = python_seconds / bitset_seconds
    if not smoke and speedup < KERNEL_SPEEDUP_FLOOR:
        raise SystemExit(
            "kernel speedup regression: %.2fx < %.1fx floor "
            "(bitset %.3fs, python %.3fs)"
            % (speedup, KERNEL_SPEEDUP_FLOOR, bitset_seconds, python_seconds)
        )
    return {
        "name": "fig8_kernel_core",
        "params": {"n": n, "m": 6, "L": L, "k": k, "D": D},
        "entries": [
            {"label": "bottom-up", "kernel": "bitset",
             "seconds": bitset_seconds},
            {"label": "bottom-up", "kernel": "python",
             "seconds": python_seconds},
            {"label": "hybrid", "kernel": "bitset",
             "seconds": hybrid_bitset},
            {"label": "hybrid", "kernel": "python",
             "seconds": hybrid_python},
        ],
        "speedup": speedup,
        "solutions_identical": identical,
    }


def bench_service_cache(smoke: bool) -> dict:
    """Cold vs warm engine requests (shared pools/stores across sessions)."""
    n = 500 if smoke else 2087
    L = 20 if smoke else 40
    answers = synthetic_answer_set(n, m=6, domain_size=8, seed=2)
    engine = Engine()
    engine.register_dataset("bench", answers)
    summary = SummaryRequest(dataset="bench", k=8, L=L, D=2,
                             algorithm="hybrid")
    start = time.perf_counter()
    cold = engine.submit(summary)
    cold_seconds = time.perf_counter() - start
    start = time.perf_counter()
    warm = engine.submit(summary)
    warm_seconds = time.perf_counter() - start
    assert cold.cache_hit is False and warm.cache_hit is True
    explore = ExploreRequest(dataset="bench", k=6, L=L, D=2,
                             k_range=(4, 10), d_values=(1, 2))
    start = time.perf_counter()
    explore_cold = engine.submit(explore)
    explore_cold_seconds = time.perf_counter() - start
    start = time.perf_counter()
    explore_warm = engine.submit(explore)
    explore_warm_seconds = time.perf_counter() - start
    assert explore_cold.cache_hit is False and explore_warm.cache_hit is True
    return {
        "name": "service_cache",
        "params": {"n": n, "m": 6, "L": L},
        "entries": [
            {"label": "summary-cold", "kernel": cold.kernel,
             "seconds": cold_seconds},
            {"label": "summary-warm", "kernel": warm.kernel,
             "seconds": warm_seconds},
            {"label": "explore-cold", "kernel": explore_cold.kernel,
             "seconds": explore_cold_seconds},
            {"label": "explore-warm", "kernel": explore_warm.kernel,
             "seconds": explore_warm_seconds},
        ],
        "speedup": explore_cold_seconds / max(explore_warm_seconds, 1e-9),
    }


def _drive_merge_loop(pool, k: int, D: int, argmax: str):
    """Run Bottom-Up's two phases, timing only the per-round argmax.

    The merge itself (pair-table maintenance) is identical in both argmax
    modes, so isolating ``best_violating_pair``/``best_any_pair`` measures
    exactly the structure this workload compares: exhaustive LCA-group
    scan vs lazy upper-bound heap.
    """
    engine = MergeEngine(
        pool,
        (pool.singleton(i) for i in pool.answers.top(pool.L)),
        argmax=argmax,
    )
    argmax_seconds = 0.0
    start = time.perf_counter()
    while True:
        tick = time.perf_counter()
        pair = engine.best_violating_pair(D)
        argmax_seconds += time.perf_counter() - tick
        if pair is None:
            break
        engine.merge(*pair)
    while engine.size > k:
        tick = time.perf_counter()
        pair = engine.best_any_pair()
        argmax_seconds += time.perf_counter() - tick
        if pair is None:
            break
        engine.merge(*pair)
    total_seconds = time.perf_counter() - start
    return engine.snapshot(), argmax_seconds, total_seconds


def bench_rounds_vs_groups(smoke: bool) -> dict:
    """Rounds-vs-groups workload: heap vs scan argmax as L grows.

    Larger L means more clusters in play and more LCA groups per greedy
    round; the scan evaluates every group every round while the lazy heap
    evaluates only the near-optimal frontier.  Pools run in ``mask_only``
    mode (the low-memory init path this PR adds).  Both modes must return
    bit-identical solutions; in full mode, at L >= 100 the heap must
    evaluate at most 1/:data:`HEAP_EVAL_RATIO_FLOOR` of the scan's
    marginals and must not be slower on argmax wall clock
    (:data:`HEAP_ARGMAX_SPEEDUP_FLOOR`).
    """
    n = 2000 if smoke else 10240
    l_values = (30, 60) if smoke else (100, 200, 400)
    k, D = 20, 2
    answers = synthetic_answer_set(n, m=6, domain_size=10, seed=1)
    entries = []
    speedups = {}
    for L in l_values:
        pool = ClusterPool(answers, L=L, mask_only=True)
        results = {}
        for mode in ("heap", "scan"):
            best_argmax = float("inf")
            best_total = float("inf")
            solution = None
            for _ in range(1 if smoke else 5):
                solution, argmax_seconds, total_seconds = _drive_merge_loop(
                    pool, k, D, mode
                )
                best_argmax = min(best_argmax, argmax_seconds)
                best_total = min(best_total, total_seconds)
            results[mode] = (solution, best_argmax, best_total)
        heap_solution, heap_argmax, heap_total = results["heap"]
        scan_solution, scan_argmax, scan_total = results["scan"]
        assert heap_solution.patterns() == scan_solution.patterns(), (
            "heap/scan argmax diverged at L=%d" % L
        )
        heap_evals = heap_solution.stats["argmax_evals"]
        scan_evals = scan_solution.stats["argmax_evals"]
        rounds = scan_solution.stats["argmax_rounds"]
        groups_per_round = scan_solution.stats["argmax_groups"] / max(
            rounds, 1.0
        )
        argmax_speedup = scan_argmax / max(heap_argmax, 1e-9)
        eval_ratio = scan_evals / max(heap_evals, 1.0)
        speedups[L] = (argmax_speedup, eval_ratio)
        for mode, argmax_seconds, total_seconds, evals in (
            ("heap", heap_argmax, heap_total, heap_evals),
            ("scan", scan_argmax, scan_total, scan_evals),
        ):
            entries.append({
                "label": "L=%d-%s" % (L, mode),
                "kernel": "bitset",
                "seconds": argmax_seconds,
                "total_seconds": total_seconds,
                "evals": evals,
                "groups_per_round": groups_per_round,
            })
        if not smoke and L >= 100:
            if eval_ratio < HEAP_EVAL_RATIO_FLOOR:
                raise SystemExit(
                    "heap argmax eval-reduction regression at L=%d: "
                    "%.2fx < %.1fx floor" % (L, eval_ratio,
                                             HEAP_EVAL_RATIO_FLOOR)
                )
            if argmax_speedup < HEAP_ARGMAX_SPEEDUP_FLOOR:
                raise SystemExit(
                    "heap argmax wall-clock regression at L=%d: %.2fx < "
                    "%.2fx floor (heap %.4fs, scan %.4fs)"
                    % (L, argmax_speedup, HEAP_ARGMAX_SPEEDUP_FLOOR,
                       heap_argmax, scan_argmax)
                )
    if not smoke:
        peak = max(
            speedup for L, (speedup, _) in speedups.items() if L >= 100
        )
        if peak < HEAP_ARGMAX_PEAK_FLOOR:
            raise SystemExit(
                "heap argmax peak-speedup regression: %.2fx < %.2fx floor "
                "across L >= 100" % (peak, HEAP_ARGMAX_PEAK_FLOOR)
            )
    return {
        "name": "rounds_vs_groups",
        "params": {"n": n, "m": 6, "L_values": list(l_values), "k": k,
                   "D": D, "mask_only": True},
        "entries": entries,
        "argmax_speedups": {
            str(L): {"argmax": spd, "eval_ratio": ratio}
            for L, (spd, ratio) in speedups.items()
        },
        "speedup": max(spd for spd, _ in speedups.values()),
    }


def _dense_scaling_leg(answers, kernel: str, L: int, k: int, D: int,
                       repeats: int):
    """One kernel leg of the scaling workload on a lazy mask-only pool.

    Returns ``(solution, init_seconds, cold_seconds, warm_seconds)``.
    The *cold* run pays the lazy pool's on-demand coverage
    materialization (posting intersections + mask packing); *warm* runs
    hit the pool's cluster cache and are dominated by the coverage
    primitives — AND/ANDNOT/popcount/value-sum over large masks — which
    is exactly what the kernels differ in.  Both numbers are recorded;
    the floors compare the warm (steady-state serving) cost.
    """
    start = time.perf_counter()
    pool = ClusterPool(
        answers, L=L, strategy="lazy", mask_only=True, kernel=kernel
    )
    init_seconds = time.perf_counter() - start
    start = time.perf_counter()
    solution = bottom_up(pool, k, D, kernel=kernel)
    cold_seconds = time.perf_counter() - start
    warm_seconds = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        solution = bottom_up(pool, k, D, kernel=kernel)
        warm_seconds = min(warm_seconds, time.perf_counter() - start)
    return solution, init_seconds, cold_seconds, warm_seconds


def bench_dense_scaling(smoke: bool) -> dict:
    """Large-n scaling workload: dense kernel vs bitset at n up to 10^6.

    Bottom-Up on lazy mask-only pools (m=6, L=100, k=20, D=2) for
    n in {10^4, 10^5, 10^6}; three legs per n — bitset, dense with the
    numpy backend, and dense with the pure-stdlib array fallback (forced
    via :class:`repro.core.dense.numpy_disabled`) — each on a pool in its
    own mask representation.  All legs must return identical solutions
    (bitset and dense sum in the same ascending order, so equality is
    exact, not tie-tolerant).  Full-mode floors:
    :data:`DENSE_NUMPY_SPEEDUP_FLOOR` at n = :data:`DENSE_FLOOR_N` and
    :data:`DENSE_FALLBACK_SPEEDUP_FLOOR` everywhere.
    """
    sizes = (2_000, 20_000) if smoke else (10_000, 100_000, 1_000_000)
    L = 50 if smoke else 100
    k, D = 20, 2
    have_numpy = dense.numpy_enabled()
    entries = []
    ratios: dict[int, dict[str, float]] = {}
    for n in sizes:
        answers = synthetic_answer_set(n, m=6, domain_size=32, seed=5)
        repeats = 1 if (smoke or n >= 1_000_000) else 2
        legs: dict[str, tuple] = {}
        legs["bitset"] = _dense_scaling_leg(answers, "bitset", L, k, D,
                                            repeats)
        with dense.numpy_disabled():
            legs["dense-fallback"] = _dense_scaling_leg(
                answers, "dense", L, k, D, repeats
            )
        if have_numpy:
            legs["dense-numpy"] = _dense_scaling_leg(
                answers, "dense", L, k, D, repeats
            )
        reference = legs["bitset"][0]
        for label, (solution, *_rest) in legs.items():
            assert solution.patterns() == reference.patterns(), (
                "dense_scaling kernel divergence at n=%d (%s)" % (n, label)
            )
        bitset_warm = legs["bitset"][3]
        ratios[n] = {
            label: bitset_warm / legs[label][3]
            for label in legs
            if label != "bitset"
        }
        for label, (solution, init_s, cold_s, warm_s) in legs.items():
            entries.append({
                "label": "n=%d-%s" % (n, label),
                "kernel": "dense" if label.startswith("dense") else "bitset",
                "seconds": warm_s,
                "cold_seconds": cold_s,
                "init_seconds": init_s,
            })
        if not smoke:
            fallback_ratio = ratios[n]["dense-fallback"]
            if fallback_ratio < DENSE_FALLBACK_SPEEDUP_FLOOR:
                raise SystemExit(
                    "dense array-fallback regression at n=%d: %.2fx < "
                    "%.2fx floor" % (n, fallback_ratio,
                                     DENSE_FALLBACK_SPEEDUP_FLOOR)
                )
            if (
                have_numpy
                and n >= DENSE_FLOOR_N
                and ratios[n]["dense-numpy"] < DENSE_NUMPY_SPEEDUP_FLOOR
            ):
                raise SystemExit(
                    "dense kernel speedup regression at n=%d: %.2fx < "
                    "%.1fx floor" % (n, ratios[n]["dense-numpy"],
                                     DENSE_NUMPY_SPEEDUP_FLOOR)
                )
    document = {
        "name": "dense_scaling",
        "params": {"m": 6, "L": L, "k": k, "D": D, "domain_size": 32,
                   "mapping": "lazy", "mask_only": True,
                   "sizes": list(sizes), "numpy": have_numpy},
        "entries": entries,
        "dense_speedups": {
            str(n): per_n for n, per_n in ratios.items()
        },
    }
    if have_numpy:
        document["speedup"] = max(
            per_n["dense-numpy"] for per_n in ratios.values()
        )
    return document


WORKLOADS = {
    "fig5_bruteforce": bench_fig5_bruteforce,
    "rounds_vs_groups": bench_rounds_vs_groups,
    "fig8a_init": bench_fig8a_init,
    "fig8b_delta": bench_fig8b_delta,
    "fig8_kernel_core": bench_kernel_core,
    "service_cache": bench_service_cache,
    "dense_scaling": bench_dense_scaling,
}


def _run_profiled(name: str, smoke: bool) -> dict:
    """Run one workload under cProfile, dumping stats under results/.

    Writes ``results/profile_<name>.pstats`` (binary, for ``snakeviz``/
    ``pstats`` sessions) and ``results/profile_<name>.txt`` (top 40
    functions by cumulative time) so future kernel decisions — e.g. the
    ROADMAP's convex-hull argmax — start from measured hot paths rather
    than guesses.  Profiling inflates wall-clock, so profiled runs are
    for *attribution*; never commit their timings to BENCH_core.json.
    """
    import cProfile
    import pstats

    results_dir = REPO_ROOT / "results"
    results_dir.mkdir(exist_ok=True)
    profiler = cProfile.Profile()
    workload = profiler.runcall(WORKLOADS[name], smoke)
    profiler.dump_stats(results_dir / ("profile_%s.pstats" % name))
    with open(results_dir / ("profile_%s.txt" % name), "w") as stream:
        stats = pstats.Stats(
            str(results_dir / ("profile_%s.pstats" % name)), stream=stream
        )
        stats.sort_stats("cumulative").print_stats(40)
    print("  profile -> results/profile_%s.{pstats,txt}" % name)
    return workload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_core.json",
        help="output JSON path (default: BENCH_core.json at the repo root)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="scaled-down sizes, no speedup thresholds (CI smoke mode)",
    )
    parser.add_argument(
        "--workloads", nargs="*", choices=sorted(WORKLOADS),
        help="subset of workloads to run (default: all)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="cProfile each workload and dump pstats output under "
        "results/ (profile_<workload>.pstats + a cumulative-time text "
        "top-40 in profile_<workload>.txt) so kernel decisions are "
        "profile-driven",
    )
    args = parser.parse_args(argv)
    names = args.workloads or sorted(WORKLOADS)
    results = []
    for name in names:
        print("running %s%s ..." % (name, " (smoke)" if args.smoke else ""),
              flush=True)
        if args.profile:
            workload = _run_profiled(name, args.smoke)
        else:
            workload = WORKLOADS[name](args.smoke)
        for entry in workload["entries"]:
            print("  %-14s %-7s %8.3f s" % (
                entry["label"], entry["kernel"], entry["seconds"]))
        if "speedup" in workload:
            print("  speedup: %.1fx" % workload["speedup"])
        results.append(workload)
    document = {
        "schema": 1,
        "benchmark": "BENCH_core",
        "smoke": args.smoke,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "workloads": results,
    }
    kernel = next(
        (w for w in results if w["name"] == "fig8_kernel_core"), None
    )
    if kernel is not None:
        document["kernel_speedup"] = kernel["speedup"]
    args.out.write_text(json.dumps(document, indent=2) + "\n")
    print("wrote %s" % args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
