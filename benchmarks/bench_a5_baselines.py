"""Appendix A.5: qualitative comparison with related approaches.

Regenerates the four comparison tables on the Example 1.1 query answers
(k=4, D=2, L=10): smart drill-down (top-10 and all elements), diversified
top-k, DisC diversity, and lambda-parameterized MMR — next to our
framework's clusters.  The reproduction target is the paper's punchline:

* smart drill-down prefers prevalent patterns that mix high- and
  low-valued answers (its rule averages sit below our cluster averages);
* diversified top-k and DisC return raw elements whose implicit
  neighbourhoods have lower averages than our clusters, and provide no
  ``*``-summaries;
* MMR at lambda=0 is the plain top-k and at higher lambda trades value
  for dispersion, again without summarization.
"""

from __future__ import annotations

from repro.baselines.disc import disc_greedy
from repro.baselines.diversified_topk import diversified_topk_exact
from repro.baselines.mmr import mmr_select
from repro.baselines.smart_drilldown import smart_drilldown
from repro.core.problem import summarize
from repro.datasets.loader import example_query_answers

from conftest import measure

K, D, L = 4, 2, 10


def _fmt(answers, pattern) -> str:
    return "(%s)" % ", ".join(str(v) for v in answers.decode(pattern))


def test_a5_baseline_comparison(report, benchmark):
    answers = example_query_answers()
    report.add("Appendix A.5 comparison on the Example 1.1 query "
               "(n=%d, k=%d, D=%d, L=%d)" % (answers.n, K, D, L))

    ours, our_seconds = measure(
        lambda: summarize(answers, k=K, L=L, D=D, algorithm="hybrid")
    )
    report.add("\n== our framework ==  (%.1f ms)" % (our_seconds * 1e3))
    report.table(
        ["cluster", "avg", "size"],
        [[_fmt(answers, c.pattern), "%.3f" % c.avg, c.size]
         for c in ours.clusters],
    )
    our_min_avg = min(c.avg for c in ours.clusters)

    top_rules = smart_drilldown(answers, k=K, restrict_to_top=L)
    report.add("\n== smart drill-down on top-%d ==" % L)
    report.table(
        ["rule", "mcount", "avg"],
        [[_fmt(answers, r.pattern), r.marginal_count,
          "%.3f" % r.marginal_avg] for r in top_rules],
    )
    all_rules = smart_drilldown(answers, k=K)
    report.add("\n== smart drill-down on all elements ==")
    report.table(
        ["rule", "mcount", "avg"],
        [[_fmt(answers, r.pattern), r.marginal_count,
          "%.3f" % r.marginal_avg] for r in all_rules],
    )
    # The paper's observation: drill-down rules over all elements average
    # below our clusters (they chase coverage, not value).
    assert min(r.marginal_avg for r in all_rules) < our_min_avg

    reps = diversified_topk_exact(answers, k=K, D=D, L=L)
    report.add("\n== diversified top-k on top-%d ==" % L)
    report.table(
        ["element", "score", "avg score (radius D-1)"],
        [[_fmt(answers, r.element), "%.3f" % r.score,
          "%.3f" % r.neighbourhood_avg] for r in reps],
    )

    disc = disc_greedy(answers, D=D, L=L)
    report.add("\n== DisC diversity on top-%d (no size bound) ==" % L)
    report.table(
        ["element", "score", "avg score (radius D)"],
        [[_fmt(answers, r.element), "%.3f" % r.score,
          "%.3f" % r.neighbourhood_avg] for r in disc],
    )

    report.add("\n== MMR lambda-parameterized ==")
    for lam in (0.0, 0.2, 0.5, 0.8, 1.0):
        picks = mmr_select(answers, k=K, lam=lam, L=L)
        report.add("lambda = %.1f" % lam)
        report.table(
            ["element", "score"],
            [[_fmt(answers, p.element), "%.3f" % p.score] for p in picks],
        )
    lam0 = [p.rank for p in mmr_select(answers, k=K, lam=0.0, L=L)]
    assert lam0 == [0, 1, 2, 3], "lambda=0 must be the plain top-k"

    benchmark(lambda: summarize(answers, k=K, L=L, D=D, algorithm="hybrid"))
