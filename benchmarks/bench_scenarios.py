"""Scenario-matrix benchmark: declarative workloads against real servers.

Runs the committed scenario matrix (:mod:`repro.scenarios.matrix`) — six
declarative scenarios covering all three session shapes
(drill-down-heavy / revisit-heavy / cold-churn), all three transports
(stdio / TCP / HTTP), three dataset sources (synthetic / MovieLens /
TPC-DS), and a live append stream — and writes the scored reports into
``BENCH_scenarios.json``.

Each scenario compiles to a deterministic request trace, executes
concurrently against a real server, and is scored on:

- per-kind latency histograms (client-side, closed-loop),
- an error taxonomy (any error is a floor violation in every scenario),
- engine cache rates (pool/store hits, coalescing),
- a **differential check**: the concurrent run must match a
  single-threaded reference replay response-for-response (timings
  zeroed, cache-hit flags dropped), and
- for the append scenario, an in-process proof that incrementally
  maintained cluster pools are bit-identical to full rebuilds on all
  three kernels.

Floors are correctness/cache-shaped, never latency-shaped, so the
committed JSON is hardware-independent; ``tests/test_docs.py``
re-evaluates every floor against the committed document.

Usage::

    PYTHONPATH=src python benchmarks/bench_scenarios.py [--smoke]
        [--out PATH]

CI runs ``--smoke`` (two tiny scenarios, one of them the append
scenario); the committed ``BENCH_scenarios.json`` must come from a full
run (``smoke: false`` is asserted by the docs tests).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.scenarios.matrix import full_matrix, smoke_matrix  # noqa: E402
from repro.scenarios.report import summarize  # noqa: E402
from repro.scenarios.runner import run_scenario  # noqa: E402
from repro.scenarios.spec import SHAPES  # noqa: E402

#: Floors on the committed document (cross-checked by tests/test_docs.py).
#: The matrix must stay broad — shapes, datasets, transports, and the
#: append scenario are the point of the harness, not incidental.
SCENARIO_COUNT_FLOOR = 5
SHAPES_REQUIRED = frozenset(SHAPES)
DATASET_SOURCES_FLOOR = 2
APPEND_SCENARIO_REQUIRED = True


def run_matrix(smoke: bool) -> dict:
    specs = smoke_matrix() if smoke else full_matrix()
    reports = []
    for spec in specs:
        print(
            "scenario %-24s shape=%-16s transport=%-5s dataset=%s"
            % (spec.name, spec.shape, spec.transport, spec.dataset.source),
            file=sys.stderr,
        )
        started = time.perf_counter()
        report = run_scenario(spec)
        report["wall_seconds"] = time.perf_counter() - started
        reports.append(report)
        print(
            "  -> %d requests, %d errors, differential %s in %.1fs"
            % (
                report["requests"],
                report["errors"]["total"],
                "identical" if report["differential"]["identical"]
                else "DIVERGED",
                report["wall_seconds"],
            ),
            file=sys.stderr,
        )
    document = summarize(reports)
    document.update({
        "schema": 1,
        "benchmark": "BENCH_scenarios",
        "smoke": smoke,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "shapes": sorted({r["spec"]["shape"] for r in reports}),
        "transports": sorted({r["spec"]["transport"] for r in reports}),
        "dataset_sources": sorted(
            {r["spec"]["dataset"]["source"] for r in reports}
        ),
        "has_append_scenario": any(
            r["spec"].get("append") for r in reports
        ),
    })
    return document


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI-sized matrix (2 scenarios incl. append)",
    )
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_scenarios.json",
        help="output path (default: BENCH_scenarios.json at the repo root)",
    )
    args = parser.parse_args(argv)

    document = run_matrix(args.smoke)
    args.out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print("wrote %s" % args.out, file=sys.stderr)

    failures: list[str] = []
    for scenario in document["scenarios"]:
        for violation in scenario["floor_violations"]:
            failures.append("%s: %s" % (scenario["name"], violation))
    if not args.smoke:
        if document["scenario_count"] < SCENARIO_COUNT_FLOOR:
            failures.append(
                "matrix has %d scenarios, floor is %d"
                % (document["scenario_count"], SCENARIO_COUNT_FLOOR)
            )
        missing_shapes = SHAPES_REQUIRED - set(document["shapes"])
        if missing_shapes:
            failures.append("missing shapes: %s" % sorted(missing_shapes))
        if len(document["dataset_sources"]) < DATASET_SOURCES_FLOOR:
            failures.append(
                "only %d dataset sources, floor is %d"
                % (len(document["dataset_sources"]), DATASET_SOURCES_FLOOR)
            )
        if APPEND_SCENARIO_REQUIRED and not document["has_append_scenario"]:
            failures.append("matrix has no append scenario")
    if failures:
        for failure in failures:
            print("FLOOR VIOLATION: %s" % failure, file=sys.stderr)
        return 1
    print(
        "all floors hold (%d scenarios)" % document["scenario_count"],
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
