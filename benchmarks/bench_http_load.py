"""Load-test harness for the HTTP front door: quotas as tenant isolation.

Boots the real :class:`repro.web.http.WebServer` in-process with auth and
a per-user quota, then replays a two-tenant trace with closed-loop HTTP
clients:

``solo``
    user B alone — the interactive analyst on an idle server; B's p95
    here is the baseline.
``contended``
    a fleet of user-A clients floods the *same dataset* (distinct
    requests, so single-flight cannot absorb them) while B replays the
    identical trace.  A's bucket drains almost immediately; from then on
    A's requests are answered with instant 429s instead of occupying the
    shared shard queue.

The tentpole claim is the isolation property, asserted in full mode:

* A demonstrably exceeds its quota (``a_429s > 0``);
* B never sees a 429 (B's trace fits its own bucket);
* B's contended p95 stays within :data:`P95_RATIO_CEILING` x its solo
  p95 — one tenant hammering refresh cannot starve another.

The harness also proves transport fidelity a third way: the golden wire
requests are driven through the stdio loop and through HTTP, and the
response payloads must be byte-identical (volatile timing fields zeroed)
— including the committed golden file itself.

Usage::

    PYTHONPATH=src python benchmarks/bench_http_load.py [--smoke]
        [--out PATH] [--attackers N] [--rounds N]

CI runs ``--smoke`` (small sizes, no floors): it boots the HTTP server,
drives both scenarios, checks parity and quota enforcement, and asserts
clean shutdown.
"""

from __future__ import annotations

import argparse
import io
import json
import platform
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))  # for tests.conftest (shared helpers)

from repro.datasets.loader import synthetic_answer_set  # noqa: E402
from repro.service import Engine, serve  # noqa: E402
from repro.web import (  # noqa: E402
    AuthService,
    BackgroundWebServer,
    QuotaService,
    WebServer,
)
from tests.conftest import paper_like_answers, zero_timings  # noqa: E402

#: Full-mode ceiling: user B's p95 under an A-side quota-throttled flood
#: may be at most this multiple of B's solo p95.
P95_RATIO_CEILING = 2.0

GOLDEN_RESPONSE = REPO_ROOT / "tests" / "golden" / "summary_response.json"

TOKEN_A = "bench-token-attacker"
TOKEN_B = "bench-token-analyst"


# -- traces -------------------------------------------------------------------


def make_engine(smoke: bool) -> Engine:
    n = 512 if smoke else 4096
    engine = Engine()
    engine.register_dataset(
        "shared", synthetic_answer_set(n, m=6, domain_size=10, seed=3)
    )
    return engine


def analyst_trace(smoke: bool) -> list[dict]:
    """User B's interactive loop: a handful of (k, D) corners."""
    L = 24 if smoke else 64
    return [
        {"schema_version": 2, "kind": "summary", "dataset": "shared",
         "k": k, "L": L, "D": D, "algorithm": "hybrid"}
        for k, D in ((4, 1), (6, 1), (8, 1), (4, 2), (6, 2), (8, 2))
    ]


def attacker_request(smoke: bool, sequence: int) -> dict:
    """User A's flood: every request distinct (k walks upward), same
    dataset as B — single-flight cannot coalesce it away and the shard
    cannot isolate it; only the quota stands between A and the queue."""
    L = 24 if smoke else 64
    return {
        "schema_version": 2, "kind": "summary", "dataset": "shared",
        "k": 10 + (sequence % 48), "L": L, "D": 1 + (sequence // 48) % 2,
        "algorithm": "hybrid",
    }


# -- HTTP client --------------------------------------------------------------


def http_post(base: str, path: str, body: dict, token: str) -> tuple[int, dict]:
    request = urllib.request.Request(
        base + path, data=json.dumps(body).encode("utf-8"), method="POST"
    )
    request.add_header("Authorization", "Bearer " + token)
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(q * len(ordered) + 0.5) - 1))
    return ordered[rank]


# -- scenarios ----------------------------------------------------------------


def run_scenario(
    label: str,
    smoke: bool,
    *,
    attackers: int,
    rounds: int,
    quota_capacity: int,
) -> dict:
    """One server + quota shape against the two-tenant client fleet."""
    engine = make_engine(smoke)
    auth = AuthService({TOKEN_A: "attacker", TOKEN_B: "analyst"})
    quota = QuotaService(quota_capacity, 3600.0)  # one window: no refill
    server = WebServer(
        engine, port=0, auth=auth, quota=quota,
        queue_depth=max(64, quota_capacity * 2),
    )
    handle = BackgroundWebServer(server).start()
    base = "http://%s:%d" % (handle.host, handle.port)
    trace = analyst_trace(smoke)

    stop_attack = threading.Event()
    counts = {"a_200": 0, "a_429": 0, "a_other": 0, "b_429": 0}
    b_latencies: list[float] = []
    b_errors: list[dict] = []
    lock = threading.Lock()

    def attack_loop(worker: int) -> None:
        sequence = worker * 1000
        while not stop_attack.is_set():
            status, payload = http_post(
                base, "/v2/summary", attacker_request(smoke, sequence),
                TOKEN_A,
            )
            sequence += 1
            with lock:
                if status == 200:
                    counts["a_200"] += 1
                elif status == 429:
                    counts["a_429"] += 1
                else:
                    counts["a_other"] += 1
            if status == 429:
                # The server sends Retry-After; any sane client library
                # backs off on 429.  A short fraction of the hint keeps
                # the flood aggressive (hundreds of rejected requests
                # per run) without degenerating into a raw TCP
                # connection flood — quota isolation, not SYN-flood
                # resistance, is the property under test.
                stop_attack.wait(0.02)

    attack_threads = [
        threading.Thread(target=attack_loop, args=(worker,), daemon=True)
        for worker in range(attackers)
    ]
    for thread in attack_threads:
        thread.start()
    if attackers:
        # Measure B at steady state: wait until A's bucket is provably
        # drained (quota 429s flowing) and A's initially-accepted burst
        # has left the shard queue — from then on the only pressure A
        # can exert is instant 429 traffic, which is the property under
        # test.  (A's accepted burst costs one bucket of computations on
        # any schedule; steady state is where the isolation claim lives.)
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            with lock:
                throttled = counts["a_429"] > 0
            _, stats = http_post(base, "/v2/admin/stats", {}, TOKEN_B)
            inflight = stats["server"]["scheduler"]["inflight"]
            if throttled and inflight == 0:
                break
            time.sleep(0.05)
        else:
            raise SystemExit(
                "scenario %r: attacker never hit quota steady state"
                % label
            )

    for _ in range(rounds):
        for request in trace:
            start = time.perf_counter()
            status, payload = http_post(base, "/v2/summary", request,
                                        TOKEN_B)
            elapsed = time.perf_counter() - start
            b_latencies.append(elapsed)
            if status == 429:
                with lock:
                    counts["b_429"] += 1
            elif status != 200:
                b_errors.append(payload)

    stop_attack.set()
    for thread in attack_threads:
        thread.join(30)
    status, ack = http_post(
        base, "/v2/admin/shutdown", {"scope": "server"}, TOKEN_B
    )
    if ack.get("kind") != "shutdown_ack":
        raise SystemExit("server did not acknowledge shutdown: %r" % ack)
    if not handle.stop(timeout=30):
        raise SystemExit(
            "server %r failed to shut down cleanly within 30s" % label
        )
    if b_errors:
        raise SystemExit(
            "scenario %r: analyst saw %d non-quota errors; first: %r"
            % (label, len(b_errors), b_errors[0])
        )
    total_b = rounds * len(trace)
    if len(b_latencies) != total_b:
        raise SystemExit(
            "scenario %r lost analyst responses: %d of %d"
            % (label, len(b_latencies), total_b)
        )
    return {
        "label": label,
        "attackers": attackers,
        "rounds": rounds,
        "quota_capacity": quota_capacity,
        "analyst_requests": total_b,
        "analyst_latency": {
            "p50_seconds": _percentile(b_latencies, 0.50),
            "p95_seconds": _percentile(b_latencies, 0.95),
            "p99_seconds": _percentile(b_latencies, 0.99),
            "mean_seconds": sum(b_latencies) / len(b_latencies),
            "max_seconds": max(b_latencies),
        },
        "attacker_responses": {
            "granted_200": counts["a_200"],
            "quota_429": counts["a_429"],
            "other": counts["a_other"],
        },
        "analyst_429s": counts["b_429"],
    }


# -- transport parity ---------------------------------------------------------


def check_transport_parity() -> dict:
    """stdio and HTTP must serve byte-identical response payloads for the
    golden wire requests (timings zeroed) — including the committed
    golden file."""
    requests = [
        {"kind": "ping"},
        {"schema_version": 2, "kind": "summary", "dataset": "paper",
         "k": 2, "L": 4, "D": 1, "algorithm": "bottom-up",
         "include_elements": True},
        {"schema_version": 2, "kind": "explore", "dataset": "paper",
         "k": 3, "L": 4, "D": 1, "k_range": [2, 4], "d_values": [1, 2]},
        {"schema_version": 2, "kind": "guidance", "dataset": "paper",
         "L": 4, "k_range": [2, 4], "d_values": [1]},
        {"kind": "datasets"},
        {"kind": "frobnicate"},
    ]
    lines = "".join(
        json.dumps(request, sort_keys=True) + "\n" for request in requests
    )

    def fresh_engine() -> Engine:
        engine = Engine()
        engine.register_dataset("paper", paper_like_answers())
        return engine

    stdio_out = io.StringIO()
    serve(io.StringIO(lines), stdio_out, engine=fresh_engine())
    stdio_responses = [
        json.dumps(zero_timings(json.loads(line)), sort_keys=True)
        for line in stdio_out.getvalue().splitlines()
    ]

    handle = BackgroundWebServer(WebServer(fresh_engine(), port=0)).start()
    base = "http://%s:%d" % (handle.host, handle.port)
    http_responses = []
    try:
        for request in requests:
            kind = request.get("kind")
            path = (
                "/v2/%s" % kind
                if kind in ("summary", "explore", "guidance")
                else "/v2/admin/%s" % kind
            )
            raw = urllib.request.Request(
                base + path, data=json.dumps(request).encode("utf-8"),
                method="POST",
            )
            try:
                with urllib.request.urlopen(raw, timeout=60) as response:
                    body = response.read()
            except urllib.error.HTTPError as error:
                body = error.read()
            if not body.endswith(b"\n"):
                raise SystemExit("HTTP body is not newline-terminated")
            http_responses.append(json.dumps(
                zero_timings(json.loads(body)), sort_keys=True
            ))
    finally:
        if not handle.stop(timeout=30):
            raise SystemExit("parity server failed to shut down cleanly")
    if stdio_responses != http_responses:
        for index, (lhs, rhs) in enumerate(
            zip(stdio_responses, http_responses)
        ):
            if lhs != rhs:
                raise SystemExit(
                    "transport divergence on request %d:\nstdio: %s\n"
                    "http:  %s" % (index, lhs, rhs)
                )
        raise SystemExit("transport divergence: response count mismatch")
    golden = json.dumps(
        json.loads(GOLDEN_RESPONSE.read_text()), sort_keys=True
    )
    if stdio_responses[1] != golden:
        raise SystemExit(
            "golden wire file mismatch: transports drifted from "
            "tests/golden/summary_response.json"
        )
    return {
        "requests": len(requests),
        "identical": True,
        "golden_file_matched": True,
    }


# -- main ---------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_http.json",
        help="output JSON path (default: BENCH_http.json at repo root)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes, few attackers, no floors (CI mode)",
    )
    parser.add_argument(
        "--attackers", type=int, default=None,
        help="closed-loop user-A clients (default: 8 full, 2 smoke)",
    )
    parser.add_argument(
        "--rounds", type=int, default=None,
        help="analyst trace repetitions (default: 4 full, 2 smoke)",
    )
    args = parser.parse_args(argv)
    attackers = args.attackers or (2 if args.smoke else 8)
    rounds = args.rounds or (2 if args.smoke else 4)
    trace_len = len(analyst_trace(args.smoke))
    # B's whole run plus a small A allowance fits one bucket; A's flood
    # is orders of magnitude past it.
    quota_capacity = rounds * trace_len + 8

    print("checking stdio/HTTP transport parity ...", flush=True)
    parity = check_transport_parity()

    print("running solo (analyst alone, %d rounds%s) ..."
          % (rounds, ", smoke" if args.smoke else ""), flush=True)
    solo = run_scenario(
        "solo", args.smoke, attackers=0, rounds=rounds,
        quota_capacity=quota_capacity,
    )
    print("running contended (%d attackers, %d rounds%s) ..."
          % (attackers, rounds, ", smoke" if args.smoke else ""),
          flush=True)
    contended = run_scenario(
        "contended", args.smoke, attackers=attackers, rounds=rounds,
        quota_capacity=quota_capacity,
    )
    for scenario in (solo, contended):
        print(
            "  %-9s p50 %6.1f ms  p95 %6.1f ms  p99 %6.1f ms  "
            "attacker 200/429: %d/%d"
            % (
                scenario["label"],
                scenario["analyst_latency"]["p50_seconds"] * 1e3,
                scenario["analyst_latency"]["p95_seconds"] * 1e3,
                scenario["analyst_latency"]["p99_seconds"] * 1e3,
                scenario["attacker_responses"]["granted_200"],
                scenario["attacker_responses"]["quota_429"],
            )
        )

    solo_p95 = solo["analyst_latency"]["p95_seconds"]
    contended_p95 = contended["analyst_latency"]["p95_seconds"]
    ratio = contended_p95 / solo_p95 if solo_p95 > 0 else float("inf")
    a_429s = contended["attacker_responses"]["quota_429"]
    print("  p95 ratio: %.2fx  (ceiling %.1fx, full mode); "
          "attacker 429s: %d; analyst 429s: %d"
          % (ratio, P95_RATIO_CEILING, a_429s, contended["analyst_429s"]))

    if contended["analyst_429s"] != 0:
        raise SystemExit(
            "quota isolation broken: analyst B saw %d 429s despite "
            "staying under capacity" % contended["analyst_429s"]
        )
    if a_429s <= 0:
        raise SystemExit(
            "quota enforcement never fired: attacker A saw no 429s"
        )
    if not args.smoke and ratio > P95_RATIO_CEILING:
        raise SystemExit(
            "tenant isolation regression: analyst p95 %.1f ms under "
            "contention vs %.1f ms solo (%.2fx > %.1fx ceiling)"
            % (contended_p95 * 1e3, solo_p95 * 1e3, ratio,
               P95_RATIO_CEILING)
        )

    document = {
        "schema": 1,
        "benchmark": "BENCH_http",
        "smoke": args.smoke,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "trace": {
            "attackers": attackers,
            "rounds": rounds,
            "analyst_requests_per_round": trace_len,
            "quota_capacity": quota_capacity,
            "n_dataset": 512 if args.smoke else 4096,
            "dataset": "shared",
        },
        "transport_parity": parity,
        "scenarios": [solo, contended],
        "p95_ratio": ratio,
        "attacker_429s": a_429s,
        "analyst_429s": contended["analyst_429s"],
    }
    args.out.write_text(json.dumps(document, indent=2) + "\n")
    print("wrote %s" % args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
