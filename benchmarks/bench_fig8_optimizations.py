"""Figure 8: effect of the Section 6.3 optimizations (ablations).

(a) Cluster generation + tuple mapping: the optimized initialization
    (generate patterns from top-L tuples, map tuples by lookup) versus the
    naive per-cluster scan of S.  Paper: 100x-1000x.
(b) Delta judgment: incremental marginal-benefit bookkeeping versus naive
    recomputation in every UpdateSolution call.  Paper: ~30x
    (4.6 s -> 0.15 s at L=1000 on their prototype).

Parameters are scaled to pure-Python speed (same N=2087, smaller L);
the measured quantity is the ratio, which is scale-stable.
"""

from __future__ import annotations

from repro.core.bottom_up import bottom_up
from repro.core.semilattice import ClusterPool
from repro.datasets.loader import synthetic_answer_set

from conftest import measure


def _answers():
    return synthetic_answer_set(2087, m=6, domain_size=8, seed=1)


def test_fig8a_initialization_optimization(report, benchmark):
    answers = _answers()
    report.add("Figure 8a: initialization with and without the cluster "
               "generation/mapping optimization (N=%d, m=6)" % answers.n)
    rows = []
    for L in (30, 60, 120):
        optimized, fast_seconds = measure(
            lambda: ClusterPool(answers, L=L, strategy="eager")
        )
        naive, slow_seconds = measure(
            lambda: ClusterPool(answers, L=L, strategy="naive")
        )
        # Both strategies must build identical pools.
        sample = list(optimized.patterns())[:: max(1, len(optimized) // 50)]
        for pattern in sample:
            assert optimized.coverage(pattern) == naive.coverage(pattern)
        rows.append([
            L,
            "%.3f" % fast_seconds,
            "%.3f" % slow_seconds,
            "%.1fx" % (slow_seconds / fast_seconds),
        ])
    report.table(["L", "with opt (s)", "without opt (s)", "speedup"], rows)
    benchmark(lambda: ClusterPool(answers, L=30, strategy="eager"))


def test_fig8b_delta_judgment(report, benchmark):
    answers = _answers()
    report.add("Figure 8b: Bottom-Up with and without delta judgment "
               "(k=20, D=2, N=%d)" % answers.n)
    rows = []
    for L in (40, 60, 80):
        pool = ClusterPool(answers, L=L)
        with_delta, fast_seconds = measure(
            lambda: bottom_up(pool, 20, 2, use_delta=True)
        )
        without_delta, slow_seconds = measure(
            lambda: bottom_up(pool, 20, 2, use_delta=False)
        )
        # The optimization must not change the result.
        assert with_delta.patterns() == without_delta.patterns()
        rows.append([
            L,
            "%.3f" % fast_seconds,
            "%.3f" % slow_seconds,
            "%.1fx" % (slow_seconds / fast_seconds),
        ])
    report.table(["L", "with delta (s)", "without delta (s)", "speedup"],
                 rows)
    pool = ClusterPool(answers, L=40)
    benchmark(lambda: bottom_up(pool, 20, 2, use_delta=True))


def test_fig8_extension_lazy_mapping(report, benchmark):
    """Extension beyond the paper: posting-list (lazy) coverage mapping.

    Initialization is O(n*m) instead of O(n*2^m); coverage resolves on
    first touch.  Useful when only a small fraction of the pool is ever
    materialized (e.g. pure Fixed-Order runs)."""
    answers = _answers()
    report.add("Extension: lazy posting-list mapping vs eager (N=%d)"
               % answers.n)
    rows = []
    for L in (60, 120):
        eager_pool, eager_seconds = measure(
            lambda: ClusterPool(answers, L=L, strategy="eager")
        )
        lazy_pool, lazy_seconds = measure(
            lambda: ClusterPool(answers, L=L, strategy="lazy")
        )
        _, eager_run = measure(lambda: bottom_up(eager_pool, 10, 2))
        _, lazy_run = measure(lambda: bottom_up(lazy_pool, 10, 2))
        rows.append([
            L,
            "%.3f" % eager_seconds,
            "%.3f" % lazy_seconds,
            "%.3f" % eager_run,
            "%.3f" % lazy_run,
        ])
    report.table(
        ["L", "eager init (s)", "lazy init (s)", "eager algo (s)",
         "lazy algo (s)"],
        rows,
    )
    benchmark(lambda: ClusterPool(answers, L=60, strategy="lazy"))
