"""Figure 9: scalability on the TPC-DS-like store_sales workload.

Paper setup: N = 47,361 aggregate answers from store_sales, k=20, D=2,
L in {500, 1000, 2000}; single runs vs precomputation.  Expected shape:
initialization grows with L but stays interactive; algorithm time grows
with L; retrieval stays in milliseconds; the whole pipeline remains usable
at tens of thousands of answers.

Scaling note: the pure-Python default is N = 20,000 (set REPRO_TPCDS_FULL=1
to run the paper's exact N = 47,361); the measured trend across L is the
reproduction target.
"""

from __future__ import annotations

import os

from repro.core.hybrid import hybrid
from repro.core.semilattice import ClusterPool
from repro.datasets.tpcds import tpcds_answer_set
from repro.interactive.precompute import SolutionStore

from conftest import measure

N_GROUPS = 47_361 if os.environ.get("REPRO_TPCDS_FULL") else 20_000
L_VALUES = (500, 1000, 2000)


def test_fig9_tpcds_scalability(report, benchmark):
    answers = tpcds_answer_set(n_groups=N_GROUPS, m=6, seed=7)
    report.add("Figure 9: TPC-DS store_sales scalability "
               "(k=20, D=2, N=%d)" % answers.n)
    single_rows = []
    precompute_rows = []
    store = None
    for L in L_VALUES:
        pool, init_seconds = measure(
            lambda: ClusterPool(answers, L=L, strategy="lazy")
        )
        solution, single_seconds = measure(lambda: hybrid(pool, 20, 2))
        single_rows.append([
            L, "%.2f" % init_seconds, "%.2f" % single_seconds,
            "%.2f" % solution.avg,
        ])
        store, sweep_seconds = measure(
            lambda: SolutionStore(pool, (10, 20), [2])
        )
        _, retrieve_seconds = measure(lambda: store.retrieve(20, 2))
        precompute_rows.append([
            L, "%.2f" % init_seconds, "%.2f" % sweep_seconds,
            "%.2f" % (retrieve_seconds * 1e3),
        ])
    report.add("\n(a) single run")
    report.table(["L", "init (s)", "algo (s)", "avg value"], single_rows)
    report.add("\n(b) with precomputation")
    report.table(
        ["L", "init (s)", "precompute algo (s)", "retrieval (ms)"],
        precompute_rows,
    )
    assert store is not None
    benchmark(lambda: store.retrieve(15, 2))
