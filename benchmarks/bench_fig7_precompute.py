"""Figure 7: cost and benefit of precomputation (Section 7.2).

Single runs (one Hybrid invocation per parameter choice) versus the
precomputation store (one sweep serving every (k, D) afterwards at
retrieval speed).  Expected shapes: per-parameter-change, the single run
is cheaper once; by the time a handful of combinations have been explored,
the precomputation amortizes (Figure 7b); both costs grow with L and N
while retrieval stays in the milliseconds.

Scaling note: the paper uses L up to 1000 on N=2087 (Java prototype);
the pure-Python reproduction uses the same N with L scaled to keep each
sweep in seconds.  Shapes, not absolute times, are the target.
"""

from __future__ import annotations

from repro.core.semilattice import ClusterPool
from repro.datasets.loader import (
    PAPER_N_DEFAULT,
    PAPER_N_LARGE,
    PAPER_N_SMALL,
    synthetic_answer_set,
)
from repro.interactive.precompute import SolutionStore

from conftest import measure


def _answers(n):
    return synthetic_answer_set(n, m=8, domain_size=6, seed=1)


def _hybrid_single(pool, k, D):
    from repro.core.hybrid import hybrid

    return hybrid(pool, k, D)


def test_fig7a_precompute_vs_k(report, benchmark):
    answers = _answers(PAPER_N_DEFAULT)
    report.add("Figure 7a: precomputation runtime vs k "
               "(L=300, D=2, N=%d)" % answers.n)
    pool, init_seconds = measure(lambda: ClusterPool(answers, L=300))
    rows = []
    for k in (5, 10, 20, 50):
        store, sweep_seconds = measure(
            lambda: SolutionStore(pool, (k, k), [2])
        )
        rows.append([
            k, "%.2f" % init_seconds, "%.2f" % sweep_seconds,
        ])
    report.table(["k", "init (s)", "algo (s)"], rows)
    benchmark.pedantic(
        lambda: SolutionStore(pool, (10, 10), [2]), rounds=3, iterations=1
    )


def test_fig7b_single_vs_precompute_six_runs(report, benchmark):
    answers = _answers(PAPER_N_LARGE)
    report.add("Figure 7b: cumulative runtime over 6 parameter changes "
               "(N=%d, L=200)" % answers.n)
    combos = [(20, 2), (10, 2), (15, 3), (8, 1), (12, 2), (18, 3)]
    pool, init_seconds = measure(lambda: ClusterPool(answers, L=200))
    single_total = init_seconds
    rows = []
    for index, (k, D) in enumerate(combos, start=1):
        _, run_seconds = measure(lambda: _hybrid_single(pool, k, D))
        single_total += run_seconds
        rows.append(["single run %d" % index, "k=%d D=%d" % (k, D),
                     "%.2f" % single_total])
    store, sweep_seconds = measure(
        lambda: SolutionStore(pool, (8, 20), [1, 2, 3])
    )
    precompute_total = init_seconds + sweep_seconds
    retrieval_total = 0.0
    for k, D in combos:
        _, retrieve_seconds = measure(lambda: store.retrieve(k, D))
        retrieval_total += retrieve_seconds
    rows.append(["precompute (init+sweep)", "all (k, D)",
                 "%.2f" % precompute_total])
    rows.append(["precompute + 6 retrievals", "",
                 "%.2f" % (precompute_total + retrieval_total)])
    report.table(["mode", "params", "cumulative seconds"], rows)
    report.add("retrievals cost %.1f ms total" % (retrieval_total * 1e3))
    benchmark(lambda: store.retrieve(12, 2))


def test_fig7cd_vs_L(report, benchmark):
    answers = _answers(PAPER_N_DEFAULT)
    report.add("Figure 7c/7d: single vs precompute runtime vs L "
               "(k=20, D=2, N=%d)" % answers.n)
    rows = []
    store = None
    for L in (100, 200, 400):
        pool, init_seconds = measure(lambda: ClusterPool(answers, L=L))
        _, single_seconds = measure(lambda: _hybrid_single(pool, 20, 2))
        store, sweep_seconds = measure(
            lambda: SolutionStore(pool, (10, 20), [1, 2])
        )
        _, retrieve_seconds = measure(lambda: store.retrieve(20, 2))
        rows.append([
            L,
            "%.2f" % init_seconds,
            "%.2f" % single_seconds,
            "%.2f" % sweep_seconds,
            "%.2f" % (retrieve_seconds * 1e3),
        ])
    report.table(
        ["L", "init (s)", "single algo (s)", "precompute algo (s)",
         "retrieval (ms)"],
        rows,
    )
    assert store is not None
    benchmark(lambda: store.retrieve(15, 1))


def test_fig7ef_vs_N(report, benchmark):
    report.add("Figure 7e/7f: single vs precompute runtime vs N "
               "(k=20, L=200, D=2)")
    rows = []
    store = None
    for n in (PAPER_N_SMALL, PAPER_N_DEFAULT, PAPER_N_LARGE):
        answers = _answers(n)
        pool, init_seconds = measure(lambda: ClusterPool(answers, L=200))
        _, single_seconds = measure(lambda: _hybrid_single(pool, 20, 2))
        store, sweep_seconds = measure(
            lambda: SolutionStore(pool, (10, 20), [1, 2])
        )
        _, retrieve_seconds = measure(lambda: store.retrieve(20, 2))
        rows.append([
            n,
            "%.2f" % init_seconds,
            "%.2f" % single_seconds,
            "%.2f" % sweep_seconds,
            "%.2f" % (retrieve_seconds * 1e3),
        ])
    report.table(
        ["N", "init (s)", "single algo (s)", "precompute algo (s)",
         "retrieval (ms)"],
        rows,
    )
    assert store is not None
    benchmark(lambda: store.retrieve(15, 1))
