"""Figure 6: runtime and value of the three greedy algorithms vs k, L, D, m.

Paper defaults: m=8, k=3, L=40, D=3 on MovieLens-scale answer sets
(N in the low thousands, the paper's default query yields N=2087).
Expected shapes (Section 7.1):

* vs k (6a/6b): Fixed-Order fastest, Bottom-Up slowest, Hybrid between;
  value of Fixed-Order below Bottom-Up/Hybrid, improving with k.
* vs L (6c/6d): all runtimes grow with L, Bottom-Up worst (quadratic);
  the value upper bound decreases with L.
* vs D (6e/6f): Fixed-Order mostly flat; value highest at small D.
* vs m (6g/6h): initialization time grows with m (cluster generation is
  O(n * 2^m)); algorithm time stays in the interactive range.
"""

from __future__ import annotations

from repro.core.bottom_up import bottom_up
from repro.core.brute_force import lower_bound
from repro.core.fixed_order import fixed_order
from repro.core.hybrid import hybrid
from repro.core.semilattice import ClusterPool
from repro.datasets.loader import movielens_answer_set

from conftest import measure

ALGORITHMS = (
    ("Bottom-Up", bottom_up),
    ("Fixed-Order", fixed_order),
    ("Hybrid", hybrid),
)

#: HAVING thresholds per m so the 6g/6h sweep input lands in the paper's
#: 140-280 range.
_SWEEP_THRESHOLDS = {4: 20, 6: 80, 8: 50, 10: 30}


def _answers(m: int = 8):
    # The MovieLens workload: top answers share attribute values, so both
    # the distance constraint and the merges behave as in the paper.
    return movielens_answer_set(m=m, having_count_gt=10)


def _row(pool, k, D):
    times, values = [], []
    for _, algorithm in ALGORITHMS:
        solution, seconds = measure(lambda: algorithm(pool, k, D))
        times.append("%.2f" % (seconds * 1e3))
        values.append("%.4f" % solution.avg)
    return times, values


def test_fig6ab_vs_k(report, benchmark):
    answers = _answers()
    pool = ClusterPool(answers, L=40)
    floor = lower_bound(pool).avg
    report.add("Figure 6a/6b: vs k  (m=8, L=40, D=3, N=%d)" % answers.n)
    time_rows, value_rows = [], []
    for k in (5, 10, 20, 40):
        times, values = _row(pool, k, 3)
        time_rows.append([k, *times])
        value_rows.append([k, *values, "%.4f" % floor])
    report.add("\n(a) runtime (ms) vs k")
    report.table(["k", "Bottom-Up", "Fixed-Order", "Hybrid"], time_rows)
    report.add("\n(b) value vs k")
    report.table(
        ["k", "Bottom-Up", "Fixed-Order", "Hybrid", "LowerBound"], value_rows
    )
    benchmark(lambda: fixed_order(pool, 10, 3))


def test_fig6cd_vs_L(report, benchmark):
    answers = _answers()
    report.add("Figure 6c/6d: vs L  (m=8, k=3, D=3, N=%d)" % answers.n)
    time_rows, value_rows = [], []
    for L in (3, 9, 27, 81):
        pool = ClusterPool(answers, L=L)
        floor = lower_bound(pool).avg
        times, values = _row(pool, 3, 3)
        time_rows.append([L, *times])
        value_rows.append([L, *values, "%.4f" % floor])
    report.add("\n(c) runtime (ms) vs L")
    report.table(["L", "Bottom-Up", "Fixed-Order", "Hybrid"], time_rows)
    report.add("\n(d) value vs L")
    report.table(
        ["L", "Bottom-Up", "Fixed-Order", "Hybrid", "LowerBound"], value_rows
    )
    pool = ClusterPool(answers, L=27)
    benchmark(lambda: fixed_order(pool, 3, 3))


def test_fig6ef_vs_D(report, benchmark):
    answers = _answers()
    pool = ClusterPool(answers, L=40)
    floor = lower_bound(pool).avg
    report.add("Figure 6e/6f: vs D  (m=8, k=10, L=40, N=%d)" % answers.n)
    time_rows, value_rows = [], []
    for D in (1, 2, 3, 4, 5, 6):
        times, values = _row(pool, 10, D)
        time_rows.append([D, *times])
        value_rows.append([D, *values, "%.4f" % floor])
    report.add("\n(e) runtime (ms) vs D")
    report.table(["D", "Bottom-Up", "Fixed-Order", "Hybrid"], time_rows)
    report.add("\n(f) value vs D")
    report.table(
        ["D", "Bottom-Up", "Fixed-Order", "Hybrid", "LowerBound"], value_rows
    )
    benchmark(lambda: fixed_order(pool, 10, 3))


def test_fig6gh_vs_m(report, benchmark):
    report.add("Figure 6g/6h: vs m  (k=L=20, D=3)")
    init_rows, time_rows = [], []
    for m in (4, 6, 8, 10):
        answers = movielens_answer_set(
            m=m, having_count_gt=_SWEEP_THRESHOLDS[m]
        )
        pool, init_seconds = measure(lambda: ClusterPool(answers, L=20))
        times, _ = _row(pool, 20, 3)
        init_rows.append([m, answers.n, "%.1f" % (init_seconds * 1e3)])
        time_rows.append([m, *times])
    report.add("\n(g) initialization time (ms) vs m")
    report.table(["m", "N", "init"], init_rows)
    report.add("\n(h) runtime (ms) vs m")
    report.table(["m", "Bottom-Up", "Fixed-Order", "Hybrid"], time_rows)
    answers = movielens_answer_set(m=8, having_count_gt=_SWEEP_THRESHOLDS[8])
    benchmark(lambda: ClusterPool(answers, L=20))
