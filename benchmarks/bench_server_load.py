"""Load-test harness for the TCP serving tier: throughput, latency, coalesce.

Boots the real :class:`repro.server.tcp.TCPServer` in-process, replays a
recorded multi-user trace with N *closed-loop* clients (each waits for
its response before sending the next request — the interactive-analyst
model), and reports throughput, p50/p95/p99 latency, and the
single-flight coalesce hit rate into ``BENCH_server.json``.

Two scenarios frame the tentpole claim:

``baseline``
    1 shard x 1 worker, single-flight coalescing **off** — the naive
    concurrent server: every duplicate request pays a full computation.
``sharded+coalesce``
    the default server shape: per-dataset shards, bounded queues, and
    single-flight coalescing of identical in-flight requests.

The trace is duplicate-heavy by construction (16 clients cycling the
same small set of distinct requests, roughly in phase), which is what
interactive multi-analyst traffic looks like; the kernels are CPU-bound
pure Python, so the speedup measures *coalescing* (one computation
fanned out to every concurrent duplicate), not parallel CPU.  In full
mode a ratio below :data:`THROUGHPUT_RATIO_FLOOR` or a zero coalesce
count is an error.

The harness also proves transport fidelity: the golden wire requests are
driven through the stdio loop and through TCP, and the responses must be
byte-identical (volatile timing fields zeroed, matching the golden-file
convention) — including the committed golden file itself.

Usage::

    PYTHONPATH=src python benchmarks/bench_server_load.py [--smoke]
        [--out PATH] [--clients N] [--rounds N]

CI runs ``--smoke`` (small sizes, few clients, no floors): it boots the
TCP server, drives it with concurrent clients, checks transport parity,
and asserts the server shuts down cleanly.
"""

from __future__ import annotations

import argparse
import io
import json
import platform
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))  # for tests.conftest (shared helpers)

from repro.datasets.loader import synthetic_answer_set  # noqa: E402
from repro.server import BackgroundServer, LineClient, TCPServer  # noqa: E402
from repro.service import Engine, serve  # noqa: E402
from tests.conftest import paper_like_answers, zero_timings  # noqa: E402

#: Full-mode floors: the sharded+coalescing server must beat the
#: 1-worker/no-coalescing baseline by this factor on the duplicate-heavy
#: 16-client trace, and coalescing must demonstrably fire.
THROUGHPUT_RATIO_FLOOR = 4.0

GOLDEN_RESPONSE = REPO_ROOT / "tests" / "golden" / "summary_response.json"


# -- trace --------------------------------------------------------------------


def make_engine(smoke: bool) -> Engine:
    n = 512 if smoke else 4096
    engine = Engine()
    engine.register_dataset(
        "left", synthetic_answer_set(n, m=6, domain_size=10, seed=1)
    )
    engine.register_dataset(
        "right", synthetic_answer_set(n, m=6, domain_size=10, seed=2)
    )
    return engine


def make_trace(smoke: bool) -> list[dict]:
    """The distinct requests of the recorded multi-user session.

    Every client cycles this same sequence (closed-loop, so the fleet
    stays roughly in phase): the duplicate-heavy pattern of a dashboard
    full of analysts pressing the same handful of (k, D) corners.
    """
    L = 24 if smoke else 64
    trace: list[dict] = []
    for k, D in ((8, 1), (12, 1), (16, 1), (8, 2), (12, 2), (16, 2)):
        trace.append({
            "schema_version": 2, "kind": "summary", "dataset": "left",
            "k": k, "L": L, "D": D, "algorithm": "hybrid",
        })
    for k in (6, 10):
        trace.append({
            "schema_version": 2, "kind": "summary", "dataset": "right",
            "k": k, "L": L, "D": 1, "algorithm": "hybrid",
        })
    for dataset in ("left", "right"):
        trace.append({
            "schema_version": 2, "kind": "explore", "dataset": dataset,
            "k": 6, "L": L, "D": 1, "k_range": [4, 12], "d_values": [1, 2],
        })
    return trace


# -- scenarios ----------------------------------------------------------------


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(q * len(ordered) + 0.5) - 1))
    return ordered[rank]


def run_scenario(
    label: str,
    smoke: bool,
    *,
    clients: int,
    rounds: int,
    shards: int,
    workers_per_shard: int,
    coalesce: bool,
) -> dict:
    """One server shape against the closed-loop client fleet."""
    engine = make_engine(smoke)  # fresh engine: every scenario starts cold
    trace = make_trace(smoke)
    server = TCPServer(
        engine, port=0,
        shards=shards, workers_per_shard=workers_per_shard,
        queue_depth=max(64, clients * len(trace)), coalesce=coalesce,
    )
    handle = BackgroundServer(server).start()
    latencies: list[float] = []
    errors: list[dict] = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def client_loop() -> None:
        with LineClient(handle.host, handle.port) as client:
            barrier.wait(timeout=60)
            local: list[float] = []
            for _ in range(rounds):
                for request in trace:
                    start = time.perf_counter()
                    response = client.request(request)
                    local.append(time.perf_counter() - start)
                    if response["kind"] == "error":
                        with lock:
                            errors.append(response)
            with lock:
                latencies.extend(local)

    threads = [threading.Thread(target=client_loop) for _ in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=60)
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join(600)
    wall_seconds = time.perf_counter() - wall_start
    with LineClient(handle.host, handle.port) as admin:
        stats = admin.request({"kind": "stats"})
        ack = admin.request({"kind": "shutdown", "scope": "server"})
    if ack.get("kind") != "shutdown_ack":
        raise SystemExit("server did not acknowledge shutdown: %r" % ack)
    if not handle.stop(timeout=30):
        raise SystemExit(
            "server %r failed to shut down cleanly within 30s" % label
        )
    if errors:
        raise SystemExit(
            "scenario %r produced %d error responses; first: %r"
            % (label, len(errors), errors[0])
        )
    total = clients * rounds * len(trace)
    if len(latencies) != total:
        raise SystemExit(
            "scenario %r lost responses: %d of %d"
            % (label, len(latencies), total)
        )
    flight = stats["server"]["scheduler"]["singleflight"]
    return {
        "label": label,
        "clients": clients,
        "rounds": rounds,
        "distinct_requests": len(trace),
        "total_requests": total,
        "shards": shards,
        "workers_per_shard": workers_per_shard,
        "coalesce_enabled": coalesce,
        "wall_seconds": wall_seconds,
        "throughput_rps": total / wall_seconds,
        "latency": {
            "p50_seconds": _percentile(latencies, 0.50),
            "p95_seconds": _percentile(latencies, 0.95),
            "p99_seconds": _percentile(latencies, 0.99),
            "mean_seconds": sum(latencies) / len(latencies),
            "max_seconds": max(latencies),
        },
        "coalesce": {
            "leaders": flight["leaders"],
            "coalesced": flight["coalesced"],
            "hit_rate": flight["hit_rate"],
        },
        "overloaded": stats["server"]["scheduler"]["overloaded"],
        "served_per_shard": stats["server"]["scheduler"]["served_per_shard"],
    }


# -- transport parity ---------------------------------------------------------


def check_transport_parity() -> dict:
    """stdio and TCP must serve byte-identical responses for the golden
    wire requests (timings zeroed) — including the committed golden file."""
    requests = [
        {"kind": "ping"},
        {"schema_version": 2, "kind": "summary", "dataset": "paper",
         "k": 2, "L": 4, "D": 1, "algorithm": "bottom-up",
         "include_elements": True},
        {"schema_version": 2, "kind": "explore", "dataset": "paper",
         "k": 3, "L": 4, "D": 1, "k_range": [2, 4], "d_values": [1, 2]},
        {"schema_version": 2, "kind": "guidance", "dataset": "paper",
         "L": 4, "k_range": [2, 4], "d_values": [1]},
        {"kind": "datasets"},
        {"kind": "frobnicate"},
    ]
    lines = "".join(
        json.dumps(request, sort_keys=True) + "\n" for request in requests
    )

    def fresh_engine() -> Engine:
        engine = Engine()
        engine.register_dataset("paper", paper_like_answers())
        return engine

    stdio_out = io.StringIO()
    serve(io.StringIO(lines), stdio_out, engine=fresh_engine())
    stdio_responses = [
        json.dumps(zero_timings(json.loads(line)), sort_keys=True)
        for line in stdio_out.getvalue().splitlines()
    ]
    handle = BackgroundServer(TCPServer(fresh_engine(), port=0)).start()
    try:
        with LineClient(handle.host, handle.port) as client:
            client.send_raw(lines.encode("utf-8"))
            tcp_responses = [
                json.dumps(zero_timings(client.recv()), sort_keys=True)
                for _ in requests
            ]
    finally:
        if not handle.stop(timeout=30):
            raise SystemExit("parity server failed to shut down cleanly")
    if stdio_responses != tcp_responses:
        for index, (lhs, rhs) in enumerate(
            zip(stdio_responses, tcp_responses)
        ):
            if lhs != rhs:
                raise SystemExit(
                    "transport divergence on request %d:\nstdio: %s\n"
                    "tcp:   %s" % (index, lhs, rhs)
                )
        raise SystemExit("transport divergence: response count mismatch")
    golden = json.dumps(
        json.loads(GOLDEN_RESPONSE.read_text()), sort_keys=True
    )
    if stdio_responses[1] != golden:
        raise SystemExit(
            "golden wire file mismatch: transports drifted from "
            "tests/golden/summary_response.json"
        )
    return {
        "requests": len(requests),
        "identical": True,
        "golden_file_matched": True,
    }


# -- main ---------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_server.json",
        help="output JSON path (default: BENCH_server.json at repo root)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes, few clients, no throughput floors (CI mode)",
    )
    parser.add_argument(
        "--clients", type=int, default=None,
        help="closed-loop clients (default: 16 full, 4 smoke)",
    )
    parser.add_argument(
        "--rounds", type=int, default=None,
        help="trace repetitions per client (default: 3 full, 2 smoke)",
    )
    args = parser.parse_args(argv)
    clients = args.clients or (4 if args.smoke else 16)
    rounds = args.rounds or (2 if args.smoke else 3)

    print("checking stdio/TCP transport parity ...", flush=True)
    parity = check_transport_parity()

    scenarios = []
    for label, shards, workers, coalesce in (
        ("baseline", 1, 1, False),
        ("sharded+coalesce", 4, 1, True),
    ):
        print(
            "running %s (%d clients x %d rounds%s) ..."
            % (label, clients, rounds, ", smoke" if args.smoke else ""),
            flush=True,
        )
        scenario = run_scenario(
            label, args.smoke,
            clients=clients, rounds=rounds,
            shards=shards, workers_per_shard=workers, coalesce=coalesce,
        )
        print(
            "  %8.1f req/s  p50 %6.1f ms  p95 %6.1f ms  p99 %6.1f ms  "
            "coalesced %d (%.0f%%)"
            % (
                scenario["throughput_rps"],
                scenario["latency"]["p50_seconds"] * 1e3,
                scenario["latency"]["p95_seconds"] * 1e3,
                scenario["latency"]["p99_seconds"] * 1e3,
                scenario["coalesce"]["coalesced"],
                scenario["coalesce"]["hit_rate"] * 100.0,
            )
        )
        scenarios.append(scenario)

    baseline, tuned = scenarios
    ratio = tuned["throughput_rps"] / baseline["throughput_rps"]
    coalesced = tuned["coalesce"]["coalesced"]
    print("  throughput ratio: %.1fx  (floor %.1fx, full mode)"
          % (ratio, THROUGHPUT_RATIO_FLOOR))
    if not args.smoke:
        if ratio < THROUGHPUT_RATIO_FLOOR:
            raise SystemExit(
                "server throughput regression: %.2fx < %.1fx floor "
                "(baseline %.1f rps, sharded+coalesce %.1f rps)"
                % (ratio, THROUGHPUT_RATIO_FLOOR,
                   baseline["throughput_rps"], tuned["throughput_rps"])
            )
        if coalesced <= 0:
            raise SystemExit(
                "single-flight coalescing never fired on the "
                "duplicate-heavy trace"
            )

    document = {
        "schema": 1,
        "benchmark": "BENCH_server",
        "smoke": args.smoke,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "trace": {
            "clients": clients,
            "rounds": rounds,
            "distinct_requests": len(make_trace(args.smoke)),
            "n_per_dataset": 512 if args.smoke else 4096,
            "datasets": ["left", "right"],
        },
        "transport_parity": parity,
        "scenarios": scenarios,
        "throughput_ratio": ratio,
        "coalesce_hits": coalesced,
        "coalesce_hit_rate": tuned["coalesce"]["hit_rate"],
    }
    args.out.write_text(json.dumps(document, indent=2) + "\n")
    print("wrote %s" % args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
